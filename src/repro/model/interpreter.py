"""The IR interpreter: executes smart-app event handlers against the model.

This is the execution back-end of the translation pipeline.  Where the paper
compiles the (type-inferred, lowered) app into Promela and lets Spin run it,
we interpret the lowered AST directly; every side effect is routed through
the cascade context so that Algorithm 1's ``actuator_state_update`` sees all
commands and the safety monitors see all sensitive operations.

Execution of one handler is *atomic* (§8 Concurrency Model: "the execution
of an app's event handler can be considered as atomic") and *bounded*: an
operation budget guards against non-terminating loops in app code.
"""

from repro.groovy import ast
from repro.groovy.errors import GroovyError
from repro.model import handles
from repro.translator.builtins import (
    call_builtin,
    is_groovy_truthy,
    to_groovy_string,
)


class ExecutionError(GroovyError):
    """Raised when app code cannot be executed (budget, bad operation)."""


class _Return(Exception):
    def __init__(self, value):
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _GroovyThrow(Exception):
    def __init__(self, value):
        self.value = value


class MethodRef:
    """A reference to an app method used as a value (handler arguments)."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return "MethodRef(%r)" % (self.name,)


class ClosureValue:
    """A closure bound to its defining scope chain."""

    __slots__ = ("params", "body", "scopes")

    def __init__(self, params, body, scopes):
        self.params = params
        self.body = body
        self.scopes = scopes

    def __repr__(self):
        return "ClosureValue(params=%r)" % ([p.name for p in self.params],)


#: maximum interpreter operations per handler invocation
DEFAULT_OP_BUDGET = 50000


# ---------------------------------------------------------------------------
# shared value semantics
#
# Pure value-level operations used identically by the tree interpreter and
# by the closure compiler (:mod:`repro.model.compiler`).  Keeping them as
# module functions means both execution back-ends share one definition of
# the semantics, which is what makes differential testing meaningful.
# ---------------------------------------------------------------------------


def get_property_value(obj, name):
    """``obj.name`` for a non-``None`` receiver (the ``_eval_Property`` core)."""
    if hasattr(obj, "get_property"):
        handled, value = obj.get_property(name)
        if handled:
            return value
    if isinstance(obj, dict):
        return obj.get(name)
    if isinstance(obj, handles.DeviceGroup):
        return [get_property_value(h, name) for h in obj.handles]
    if isinstance(obj, list):
        if name == "size":
            return len(obj)
        return [get_property_value(item, name) for item in obj]
    if isinstance(obj, str) and name == "length":
        return len(obj)
    return None


def index_value(obj, index):
    """``obj[index]`` (the ``_eval_Index`` core)."""
    if isinstance(obj, (list, tuple, str)):
        if isinstance(index, (int, float)) and -len(obj) <= index < len(obj):
            return obj[int(index)]
        return None
    if isinstance(obj, dict):
        return obj.get(index)
    if isinstance(obj, handles.AppStateMap):
        return obj.mapping.get(index)
    if isinstance(obj, handles.DeviceGroup):
        return obj[int(index)] if int(index) < len(obj) else None
    return None


def assign_property_value(obj, name, value, node):
    """``obj.name = value`` (the property branch of ``_exec_Assign``)."""
    if hasattr(obj, "set_property") and obj.set_property(name, value):
        pass
    elif isinstance(obj, dict):
        obj[name] = value
    else:
        raise ExecutionError(
            "cannot assign property %r on %r" % (name, obj),
            node.line, node.col)


def assign_index_value(obj, index, value, node):
    """``obj[index] = value`` (the index branch of ``_exec_Assign``)."""
    if isinstance(obj, list):
        while len(obj) <= index:
            obj.append(None)
        obj[index] = value
    elif isinstance(obj, dict):
        obj[index] = value
    elif isinstance(obj, handles.AppStateMap):
        obj.mapping[index] = value
    else:
        raise ExecutionError("cannot index-assign %r" % (obj,),
                             node.line, node.col)

#: platform APIs that register subscriptions at runtime (already statically
#: extracted, so they are no-ops during model execution)
_RUNTIME_NOOPS = frozenset([
    "subscribe", "definition", "preferences", "page", "section", "paragraph",
    "label", "mode", "initialize_marker", "mappings", "dynamicPage",
    "updated_marker", "refresh",
])


#: the ``Math`` handle is stateless, so one instance serves every executor
_MATH = handles.MathHandle()


class Interpreter:
    """Executes one app's handlers.  One instance per (app, cascade)."""

    def __init__(self, app_instance, ctx, op_budget=DEFAULT_OP_BUDGET):
        self.app = app_instance
        self.ctx = ctx
        self.budget = op_budget
        self._globals = self._build_globals()

    # ------------------------------------------------------------------
    # public entry points
    # ------------------------------------------------------------------

    def run_handler(self, handler_name, event_handle):
        """Invoke an event handler with an event object (or ``None``)."""
        method = self.app.method(handler_name)
        if method is None:
            self.ctx.log(self.app.name, "warn",
                         "handler %s not found" % handler_name)
            return None
        args = []
        if method.params:
            args = [event_handle] + [None] * (len(method.params) - 1)
        return self.call_method(method, args)

    def call_method(self, method, args, named=None):
        """Invoke a user-defined method with positional arguments."""
        scope = {}
        for index, param in enumerate(method.params):
            if index < len(args):
                scope[param.name] = args[index]
            elif param.default is not None:
                scope[param.name] = self.eval(param.default, [scope])
            else:
                scope[param.name] = None
        if named:
            # Groovy collects leading named args into a Map first parameter.
            named_map = {entry.key: None for entry in named}
            for entry in named:
                named_map[entry.key] = self.eval(entry.value, [scope])
            if method.params and method.params[0].name not in scope or not args:
                if method.params:
                    scope[method.params[0].name] = named_map
        scopes = [scope]
        try:
            last = self.exec_block(method.body, scopes)
        except _Return as ret:
            return ret.value
        return last

    def invoke_closure(self, closure, args):
        """Invoke a closure value (used by built-ins like ``each``)."""
        scope = {}
        params = closure.params
        if not params:
            scope["it"] = args[0] if args else None
        else:
            if len(args) < len(params) and len(params) == 2 and len(args) == 1:
                # map-entry style: closure { k, v -> } called with an entry
                entry = args[0]
                if isinstance(entry, handles.StateRecord):
                    args = [entry.name, entry.value]
            for index, param in enumerate(params):
                scope[param.name] = args[index] if index < len(args) else None
        scopes = list(closure.scopes) + [scope]
        try:
            return self.exec_block(closure.body, scopes)
        except _Return as ret:
            return ret.value

    # ------------------------------------------------------------------
    # environment
    # ------------------------------------------------------------------

    def _build_globals(self):
        # "state"/"atomicState" bind lazily in _lookup: ctx.app_state()
        # escapes the app's persistent map (forcing the model state to
        # deep-copy it on every branch), so stateless handlers must not
        # pay for a handle they never touch
        ctx = self.ctx
        app_name = self.app.name
        env = {
            "location": handles.LocationHandle(ctx, app_name),
            "log": handles.LogHandle(ctx, app_name),
            "app": handles.AppHandle(app_name),
            "Math": _MATH,
        }
        settings = {}
        devices = ctx.system.devices
        for input_name, is_device, payload, wants_group in (
                self.app.binding_plan()):
            if is_device:
                bound = []
                for name in payload:
                    instance = devices.get(name)
                    if instance is not None:
                        bound.append(handles.DeviceHandle(instance, ctx,
                                                          app_name))
                if wants_group or len(bound) > 1:
                    value = handles.DeviceGroup(bound)
                else:
                    value = bound[0] if bound else None
            else:
                value = payload
            env[input_name] = value
            settings[input_name] = value
        env["settings"] = settings
        return env

    def _tick(self):
        self.budget -= 1
        if self.budget <= 0:
            raise ExecutionError("operation budget exhausted (possible "
                                 "non-terminating loop in app code)")

    def _lookup(self, name, scopes):
        for scope in reversed(scopes):
            if name in scope:
                return True, scope[name]
        if name in self._globals:
            return True, self._globals[name]
        if name in ("state", "atomicState"):
            handle = handles.AppStateMap(self.ctx.app_state(self.app.name))
            self._globals["state"] = handle
            self._globals["atomicState"] = handle
            return True, handle
        if self.app.method(name) is not None:
            return True, MethodRef(name)
        return False, None

    def _assign_name(self, name, value, scopes):
        for scope in reversed(scopes):
            if name in scope:
                scope[name] = value
                return
        if name in self._globals and not isinstance(
                self._globals[name], (handles.AppStateMap, handles.LocationHandle,
                                      handles.LogHandle, handles.AppHandle)):
            # apps occasionally overwrite a setting-backed global locally
            self._globals[name] = value
            return
        scopes[-1][name] = value

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def exec_block(self, block, scopes):
        last = None
        for stmt in block.stmts:
            last = self.exec_stmt(stmt, scopes)
        return last

    def exec_stmt(self, stmt, scopes):
        self._tick()
        kind = type(stmt).__name__
        method = getattr(self, "_exec_%s" % kind, None)
        if method is None:
            raise ExecutionError("cannot execute %s" % kind,
                                 stmt.line, stmt.col)
        return method(stmt, scopes)

    def _exec_ExprStmt(self, stmt, scopes):
        return self.eval(stmt.value, scopes)

    def _exec_VarDecl(self, stmt, scopes):
        value = self.eval(stmt.value, scopes) if stmt.value is not None else None
        scopes[-1][stmt.name] = value
        return None

    def _exec_Assign(self, stmt, scopes):
        value = self.eval(stmt.value, scopes)
        target = stmt.target
        if isinstance(target, ast.Name):
            self._assign_name(target.id, value, scopes)
        elif isinstance(target, ast.Property):
            obj = self.eval(target.obj, scopes)
            if obj is None and target.safe:
                return None
            assign_property_value(obj, target.name, value, stmt)
        elif isinstance(target, ast.Index):
            obj = self.eval(target.obj, scopes)
            index = self.eval(target.index, scopes)
            assign_index_value(obj, index, value, stmt)
        else:
            raise ExecutionError("invalid assignment target", stmt.line, stmt.col)
        return None

    def _exec_If(self, stmt, scopes):
        if is_groovy_truthy(self.eval(stmt.cond, scopes)):
            return self.exec_block(stmt.then, scopes + [{}])
        if stmt.orelse is not None:
            return self.exec_block(stmt.orelse, scopes + [{}])
        return None

    def _exec_While(self, stmt, scopes):
        while is_groovy_truthy(self.eval(stmt.cond, scopes)):
            self._tick()
            try:
                self.exec_block(stmt.body, scopes + [{}])
            except _Break:
                break
            except _Continue:
                continue
        return None

    def _exec_ForIn(self, stmt, scopes):
        iterable = self._iterate(self.eval(stmt.iterable, scopes))
        for item in iterable:
            self._tick()
            scope = {stmt.var: item}
            try:
                self.exec_block(stmt.body, scopes + [scope])
            except _Break:
                break
            except _Continue:
                continue
        return None

    def _exec_Return(self, stmt, scopes):
        value = self.eval(stmt.value, scopes) if stmt.value is not None else None
        raise _Return(value)

    def _exec_Break(self, stmt, scopes):
        raise _Break()

    def _exec_Continue(self, stmt, scopes):
        raise _Continue()

    def _exec_Block(self, stmt, scopes):
        return self.exec_block(stmt, scopes + [{}])

    def _exec_Switch(self, stmt, scopes):
        subject = self.eval(stmt.subject, scopes)
        default_case = None
        for case in stmt.cases:
            if not case.values:
                default_case = case
                continue
            for value_expr in case.values:
                value = self.eval(value_expr, scopes)
                if self._case_matches(subject, value):
                    try:
                        return self.exec_block(case.body, scopes + [{}])
                    except _Break:
                        return None
        if default_case is not None:
            try:
                return self.exec_block(default_case.body, scopes + [{}])
            except _Break:
                return None
        return None

    def _case_matches(self, subject, value):
        if isinstance(value, list):
            return subject in value
        return self._equals(subject, value)

    def _exec_Try(self, stmt, scopes):
        try:
            self.exec_block(stmt.body, scopes + [{}])
        except (_GroovyThrow, ExecutionError) as exc:
            if stmt.catches:
                _type, var, block = stmt.catches[0]
                value = exc.value if isinstance(exc, _GroovyThrow) else str(exc)
                self.exec_block(block, scopes + [{var: value}])
            elif isinstance(exc, ExecutionError):
                raise
        finally:
            if stmt.finally_body is not None:
                self.exec_block(stmt.finally_body, scopes + [{}])
        return None

    def _exec_Throw(self, stmt, scopes):
        raise _GroovyThrow(self.eval(stmt.value, scopes))

    def _exec_MethodDef(self, stmt, scopes):
        return None  # nested defs are ignored (not used by smart apps)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def eval(self, expr, scopes):
        self._tick()
        kind = type(expr).__name__
        method = getattr(self, "_eval_%s" % kind, None)
        if method is None:
            raise ExecutionError("cannot evaluate %s" % kind,
                                 expr.line, expr.col)
        return method(expr, scopes)

    def _eval_Literal(self, expr, scopes):
        return expr.value

    def _eval_GString(self, expr, scopes):
        parts = []
        for part in expr.parts:
            if isinstance(part, str):
                parts.append(part)
            else:
                parts.append(to_groovy_string(self.eval(part, scopes)))
        return "".join(parts)

    def _eval_Name(self, expr, scopes):
        found, value = self._lookup(expr.id, scopes)
        if found:
            return value
        # Unbound names resolve to null, matching unset optional inputs.
        return None

    def _eval_ListLit(self, expr, scopes):
        return [self.eval(item, scopes) for item in expr.items]

    def _eval_MapLit(self, expr, scopes):
        mapping = {}
        for entry in expr.entries:
            key = entry.key
            if isinstance(key, ast.Node):
                key = self.eval(key, scopes)
            mapping[key] = self.eval(entry.value, scopes)
        return mapping

    def _eval_RangeLit(self, expr, scopes):
        lo = self._to_number(self.eval(expr.lo, scopes))
        hi = self._to_number(self.eval(expr.hi, scopes))
        return list(range(int(lo), int(hi) + 1))

    def _eval_Property(self, expr, scopes):
        obj = self.eval(expr.obj, scopes)
        if obj is None:
            if expr.safe:
                return None
            return None  # Groovy would NPE; null-tolerance keeps corpus robust
        return self._get_property(obj, expr.name, expr)

    def _get_property(self, obj, name, node):
        return get_property_value(obj, name)

    def _eval_Index(self, expr, scopes):
        obj = self.eval(expr.obj, scopes)
        index = self.eval(expr.index, scopes)
        return index_value(obj, index)

    def _eval_Closure(self, expr, scopes):
        return ClosureValue(expr.params, expr.body, list(scopes))

    def _eval_Unary(self, expr, scopes):
        if expr.op == "!":
            return not is_groovy_truthy(self.eval(expr.operand, scopes))
        if expr.op in ("++", "--"):
            value = self._to_number(self.eval(expr.operand, scopes)) or 0
            delta = 1 if expr.op == "++" else -1
            new = value + delta
            if isinstance(expr.operand, ast.Name):
                self._assign_name(expr.operand.id, new, scopes)
            return new
        value = self.eval(expr.operand, scopes)
        if expr.op == "-":
            return -self._to_number(value)
        if expr.op == "+":
            return self._to_number(value)
        if expr.op == "~":
            return ~int(self._to_number(value))
        raise ExecutionError("unknown unary %r" % expr.op, expr.line, expr.col)

    def _eval_Postfix(self, expr, scopes):
        value = self._to_number(self.eval(expr.operand, scopes)) or 0
        delta = 1 if expr.op == "++" else -1
        if isinstance(expr.operand, ast.Name):
            self._assign_name(expr.operand.id, value + delta, scopes)
        return value

    def _eval_Ternary(self, expr, scopes):
        if is_groovy_truthy(self.eval(expr.cond, scopes)):
            return self.eval(expr.then, scopes)
        return self.eval(expr.orelse, scopes)

    def _eval_Elvis(self, expr, scopes):
        value = self.eval(expr.value, scopes)
        if is_groovy_truthy(value):
            return value
        return self.eval(expr.fallback, scopes)

    def _eval_Cast(self, expr, scopes):
        value = self.eval(expr.value, scopes)
        target = expr.type_name
        if target in ("int", "Integer", "long", "Long", "short", "BigInteger"):
            return int(float(value)) if value is not None else None
        if target in ("float", "double", "Float", "Double", "BigDecimal"):
            return float(value) if value is not None else None
        if target in ("String", "GString"):
            return to_groovy_string(value)
        if target in ("boolean", "Boolean"):
            return is_groovy_truthy(value)
        if target in ("List", "ArrayList", "Collection"):
            return list(self._iterate(value)) if value is not None else []
        return value

    def _eval_New(self, expr, scopes):
        args = [self.eval(a, scopes) for a in expr.args]
        return self._construct(expr.type_name, args, expr)

    def _construct(self, type_name, args, node):
        if type_name == "Date":
            if args:
                millis = args[0]
                if isinstance(millis, handles.DateValue):
                    millis = millis.millis
                return handles.DateValue(self._to_number(millis))
            return handles.DateValue(self.ctx.now_millis())
        if type_name in ("ArrayList", "LinkedList"):
            return list(args[0]) if args else []
        if type_name in ("HashMap", "LinkedHashMap", "TreeMap"):
            return dict(args[0]) if args else {}
        if type_name in ("HashSet", "TreeSet"):
            return list(args[0]) if args else []
        if type_name in ("String", "StringBuilder", "StringBuffer"):
            return to_groovy_string(args[0]) if args else ""
        raise ExecutionError("cannot construct %r" % type_name,
                             node.line, node.col)

    def _eval_Binary(self, expr, scopes):
        op = expr.op
        if op == "&&":
            left = self.eval(expr.left, scopes)
            if not is_groovy_truthy(left):
                return False
            return is_groovy_truthy(self.eval(expr.right, scopes))
        if op == "||":
            left = self.eval(expr.left, scopes)
            if is_groovy_truthy(left):
                return True
            return is_groovy_truthy(self.eval(expr.right, scopes))
        left = self.eval(expr.left, scopes)
        right = self.eval(expr.right, scopes)
        return self._binary(op, left, right, expr)

    def _binary(self, op, left, right, node):
        if op == "==":
            return self._equals(left, right)
        if op == "!=":
            return not self._equals(left, right)
        if op in ("<", "<=", ">", ">="):
            return self._compare(op, left, right)
        if op == "<=>":
            ln, rn = self._coerce_pair(left, right)
            return (ln > rn) - (ln < rn)
        if op == "+":
            return self._plus(left, right)
        if op == "-":
            if isinstance(left, list):
                rights = right if isinstance(right, list) else [right]
                return [item for item in left if item not in rights]
            return self._to_number(left) - self._to_number(right)
        if op == "*":
            return self._to_number(left) * self._to_number(right)
        if op == "/":
            divisor = self._to_number(right)
            if divisor == 0:
                raise _GroovyThrow("division by zero")
            return self._to_number(left) / divisor
        if op == "%":
            return self._to_number(left) % self._to_number(right)
        if op == "**":
            return self._to_number(left) ** self._to_number(right)
        if op == "in":
            return self._membership(left, right)
        if op == "instanceof":
            return self._instanceof(left, right)
        if op == "<<":
            if isinstance(left, list):
                left.append(right)
                return left
            return int(self._to_number(left)) << int(self._to_number(right))
        if op == ">>":
            return int(self._to_number(left)) >> int(self._to_number(right))
        if op in ("&", "|", "^"):
            ln, rn = int(self._to_number(left)), int(self._to_number(right))
            return {"&": ln & rn, "|": ln | rn, "^": ln ^ rn}[op]
        if op == "==~":
            import re
            return re.fullmatch(str(right), str(left)) is not None
        raise ExecutionError("unknown operator %r" % op, node.line, node.col)

    def _equals(self, left, right):
        if isinstance(left, bool) or isinstance(right, bool):
            if isinstance(left, bool) and isinstance(right, bool):
                return left == right
        if isinstance(left, (int, float)) and isinstance(right, (int, float)):
            return float(left) == float(right)
        return left == right

    def _compare(self, op, left, right):
        ln, rn = self._coerce_pair(left, right)
        if op == "<":
            return ln < rn
        if op == "<=":
            return ln <= rn
        if op == ">":
            return ln > rn
        return ln >= rn

    def _coerce_pair(self, left, right):
        if isinstance(left, handles.DateValue) or isinstance(right, handles.DateValue):
            ln = left.millis if isinstance(left, handles.DateValue) else self._to_number(left)
            rn = right.millis if isinstance(right, handles.DateValue) else self._to_number(right)
            return ln, rn
        if isinstance(left, str) and isinstance(right, str):
            try:
                return float(left), float(right)
            except ValueError:
                return left, right
        return self._to_number(left), self._to_number(right)

    def _plus(self, left, right):
        if isinstance(left, list):
            if isinstance(right, list):
                return left + right
            return left + [right]
        if isinstance(left, str) or isinstance(right, str):
            return to_groovy_string(left) + to_groovy_string(right)
        if isinstance(left, dict) and isinstance(right, dict):
            merged = dict(left)
            merged.update(right)
            return merged
        if isinstance(left, handles.DateValue):
            return handles.DateValue(left.millis + self._to_number(right))
        return self._to_number(left) + self._to_number(right)

    def _membership(self, item, container):
        if container is None:
            return False
        if isinstance(container, (list, tuple, str)):
            return item in container
        if isinstance(container, dict):
            return item in container
        if isinstance(container, handles.DeviceGroup):
            return item in container.handles
        return False

    def _instanceof(self, value, type_name):
        table = {
            "String": str, "Integer": int, "Long": int, "Number": (int, float),
            "Double": float, "Float": float, "BigDecimal": float,
            "Boolean": bool, "List": list, "ArrayList": list, "Map": dict,
            "Collection": (list, tuple),
        }
        python_type = table.get(str(type_name))
        if python_type is None:
            return False
        if python_type is int and isinstance(value, bool):
            return False
        return isinstance(value, python_type)

    def _to_number(self, value):
        if value is None:
            return 0
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, (int, float)):
            return value
        if isinstance(value, handles.DateValue):
            return value.millis
        if isinstance(value, str):
            try:
                return int(value)
            except ValueError:
                try:
                    return float(value)
                except ValueError:
                    raise _GroovyThrow("cannot coerce %r to number" % value)
        raise _GroovyThrow("cannot coerce %r to number" % (value,))

    def _iterate(self, value):
        if value is None:
            return []
        if isinstance(value, handles.DeviceGroup):
            return list(value.handles)
        if isinstance(value, dict):
            return [handles.StateRecord(k, v, None) for k, v in value.items()]
        if isinstance(value, (list, tuple, str)):
            return list(value)
        return [value]

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------

    def _eval_Call(self, expr, scopes):
        name = expr.name
        args = [self.eval(a, scopes) for a in expr.args]
        named = {entry.key: self.eval(entry.value, scopes)
                 for entry in expr.named if isinstance(entry.key, str)}
        closure = self._eval_Closure(expr.closure, scopes) if expr.closure else None

        method = self.app.method(name)
        if method is not None:
            if named and not args:
                args = [named]
            if closure is not None:
                args.append(closure)
            return self.call_method(method, args)

        # local closure variables are callable: `def c = {...}; c(1)`
        found, value = self._lookup(name, scopes)
        if found and isinstance(value, ClosureValue):
            return self.invoke_closure(value, args)

        return self._platform_api(name, args, named, closure, expr)

    def _eval_MethodCall(self, expr, scopes):
        obj = self.eval(expr.obj, scopes)
        if obj is None:
            if expr.safe:
                return None
            return None
        args = [self.eval(a, scopes) for a in expr.args]
        named = {entry.key: self.eval(entry.value, scopes)
                 for entry in expr.named if isinstance(entry.key, str)}
        closure = self._eval_Closure(expr.closure, scopes) if expr.closure else None

        if expr.spread:
            results = []
            for item in self._iterate(obj):
                results.append(self._invoke_on(item, expr.name, args, named,
                                               closure, expr))
            return results
        return self._invoke_on(obj, expr.name, args, named, closure, expr)

    def _invoke_on(self, obj, name, args, named, closure, node):
        if isinstance(obj, ClosureValue) and name == "call":
            return self.invoke_closure(obj, args)
        if isinstance(obj, MethodRef) and name == "call":
            method = self.app.method(obj.name)
            return self.call_method(method, args)
        if hasattr(obj, "invoke"):
            handled, result = obj.invoke(name, args, named)
            if handled:
                return result
        receiver = obj
        if isinstance(obj, handles.DeviceGroup):
            receiver = obj.handles
        handled, result = call_builtin(receiver, name, args, closure,
                                       self.invoke_closure)
        if handled:
            return result
        if isinstance(obj, handles.MapEntryValue):
            if name == "getKey":
                return obj.key
            if name == "getValue":
                return obj.value
        # `this.someMethod(...)` and helper dispatch on unknown receivers
        method = self.app.method(name)
        if method is not None:
            if closure is not None:
                args = list(args) + [closure]
            return self.call_method(method, args)
        self.ctx.log(self.app.name, "warn",
                     "unmodeled method %s on %r" % (name, type(obj).__name__))
        return None

    # ------------------------------------------------------------------
    # platform APIs
    # ------------------------------------------------------------------

    def _platform_api(self, name, args, named, closure, node):
        ctx, app_name = self.ctx, self.app.name

        if name in _RUNTIME_NOOPS:
            return None
        if name == "unsubscribe":
            ctx.security_sensitive_command(app_name, "unsubscribe", node.line)
            return None
        if name in ("sendSms", "sendSmsMessage"):
            recipient = str(args[0]) if args else ""
            message = to_groovy_string(args[1]) if len(args) > 1 else ""
            ctx.send_sms(app_name, recipient, message, node.line)
            return None
        if name in ("sendPush", "sendPushMessage"):
            ctx.send_push(app_name, to_groovy_string(args[0]) if args else "",
                          node.line)
            return None
        if name == "sendNotification":
            ctx.send_push(app_name, to_groovy_string(args[0]) if args else "",
                          node.line)
            return None
        if name == "sendNotificationToContacts":
            message = to_groovy_string(args[0]) if args else ""
            recipients = args[1] if len(args) > 1 else []
            for recipient in self._iterate(recipients):
                ctx.send_sms(app_name, str(recipient), message, node.line)
            return None
        if name == "sendNotificationEvent":
            return None  # display-only notification in the companion app
        if name in ("httpPost", "httpPostJson", "httpGet", "httpPut",
                    "httpPutJson", "httpDelete", "asynchttp_v1"):
            url = ""
            if args:
                first = args[0]
                if isinstance(first, dict):
                    url = str(first.get("uri", ""))
                else:
                    url = str(first)
            elif named:
                url = str(named.get("uri", ""))
            ctx.http_request(app_name, name, url, node.line)
            return None
        if name in ("runIn", "runOnce", "runDaily"):
            handler = args[1] if len(args) > 1 else None
            handler_name = self._handler_arg(handler)
            if handler_name:
                ctx.schedule(app_name, handler_name, periodic=False)
            return None
        if name == "schedule":
            handler_name = self._handler_arg(args[1] if len(args) > 1 else None)
            if handler_name:
                ctx.schedule(app_name, handler_name, periodic=True)
            return None
        if name.startswith("runEvery"):
            handler_name = self._handler_arg(args[0] if args else None)
            if handler_name:
                ctx.schedule(app_name, handler_name, periodic=True)
            return None
        if name == "unschedule":
            handler_name = self._handler_arg(args[0]) if args else None
            ctx.unschedule(app_name, handler_name)
            return None
        if name == "setLocationMode":
            ctx.set_location_mode(str(args[0]), app_name)
            return None
        if name == "sendLocationEvent":
            event_name = named.get("name") or (args[0] if args else None)
            value = named.get("value")
            if event_name == "mode" and value is not None:
                ctx.set_location_mode(str(value), app_name)
            else:
                ctx.fake_event(app_name, str(event_name), value, node.line)
            return None
        if name == "sendEvent":
            payload = named or (args[0] if args and isinstance(args[0], dict) else {})
            event_name = payload.get("name")
            value = payload.get("value")
            if event_name is not None:
                ctx.fake_event(app_name, str(event_name), value, node.line)
            return None
        if name == "createEvent":
            return dict(named) if named else (args[0] if args else {})
        if name == "now":
            return ctx.now_millis()
        if name == "getSunriseAndSunset":
            return {"sunrise": handles.DateValue(ctx.now_millis()),
                    "sunset": handles.DateValue(ctx.now_millis() + 1)}
        if name == "timeOfDayIsBetween":
            # Over-approximation: time-window guards stay open so guarded
            # behaviours are explored (documented in DESIGN.md).
            return True
        if name in ("timeToday", "timeTodayAfter", "toDateTime"):
            return handles.DateValue(ctx.now_millis())
        if name == "parseJson":
            return {}
        if name == "textToSpeech":
            return {"uri": "tts://" + (to_groovy_string(args[0]) if args else "")}
        if name in ("getChildDevices", "getAllChildDevices", "getChildDevice"):
            # Dynamic device discovery is out of scope (paper §11 limitation 2).
            ctx.log(app_name, "warn", "dynamic device discovery is unsupported")
            return []
        if name in ("pause", "updateAppLabel", "createAccessToken",
                    "revokeAccessToken", "getApiServerUrl"):
            return None
        if name == "canSchedule":
            return True
        if name == "getTemperatureScale" or name == "temperatureScale":
            return "F"
        ctx.log(app_name, "warn", "unmodeled API %s()" % name)
        return None

    def _handler_arg(self, value):
        if isinstance(value, MethodRef):
            return value.name
        if isinstance(value, str):
            return value
        if isinstance(value, ClosureValue):
            return None
        return None
