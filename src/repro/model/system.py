"""The bound IoT system: devices + app instances + subscriptions.

An :class:`IoTSystem` is the transition system the checker explores.  It
offers the sequential transition relation (Algorithm 1: one external event,
run-to-completion cascade) and the concurrent one (§8 Concurrency Model:
interleavings of pending internal events), both with optional failure
enumeration.
"""

from repro.model.cascade import Cascade, FailureScenario, NO_FAILURE
from repro.model.events import APP, DEVICE, FAKE, LOCATION, ExternalEvent
from repro.model.faults import CLEAN
from repro.model.handles import DeviceGroup, DeviceHandle
from repro.model.state import ModelState
from repro.translator.lowering import lower_program


#: "compilation not yet attempted" marker for AppInstance._compiled
_UNCOMPILED = object()


class AppInstance:
    """One installed app: parsed definition + lowered IR + input bindings."""

    def __init__(self, smart_app, bindings, instance_name=None):
        self.smart_app = smart_app
        self.name = instance_name or smart_app.name
        self.bindings = dict(bindings)
        self._ir = lower_program(smart_app.program)
        self._methods = {m.name: m for m in self._ir.methods}
        self._input_decls = {i.name: i for i in smart_app.inputs}
        self._compiled = _UNCOMPILED
        self._binding_plan = None

    def method(self, name):
        return self._methods.get(name)

    def compiled_program(self):
        """The app's handlers compiled to closures (once per instance).

        Returns ``None`` when compilation failed; callers fall back to the
        tree interpreter for this app (the failure is memoized, so the
        compile is attempted at most once).
        """
        if self._compiled is _UNCOMPILED:
            from repro.model.compiler import CompileError, compile_program
            try:
                self._compiled = compile_program(self._ir)
            except CompileError:
                self._compiled = None
        return self._compiled

    def binding_names(self):
        return list(self.bindings.keys())

    def binding(self, input_name):
        return self.bindings.get(input_name)

    def materialize(self, input_name, ctx):
        """Turn one binding into the runtime value app code sees.

        Single-input view over :meth:`binding_plan` (the executors build
        their whole environment from the plan directly); both paths share
        one definition of the binding -> runtime-value rules.
        """
        for name, is_device, payload, wants_group in self.binding_plan():
            if name != input_name:
                continue
            if not is_device:
                return payload
            bound = []
            for device_name in payload:
                instance = ctx.system.devices.get(device_name)
                if instance is not None:
                    bound.append(DeviceHandle(instance, ctx, self.name))
            if wants_group or len(bound) > 1:
                return DeviceGroup(bound)
            return bound[0] if bound else None
        return None

    def binding_plan(self):
        """Static shape of every binding: ``(name, is_device, payload,
        wants_group)`` tuples, computed once per instance.

        The executors rebuild their environment per handler run (handles
        wrap the per-cascade context); this plan hoists the per-input
        declaration lookups and shape checks out of that inner loop.
        """
        if self._binding_plan is None:
            plan = []
            for input_name, value in self.bindings.items():
                declaration = self._input_decls.get(input_name)
                if (value is not None and declaration is not None
                        and declaration.is_device):
                    names = value if isinstance(value, list) else [value]
                    plan.append((input_name, True, list(names),
                                 declaration.multiple))
                else:
                    plan.append((input_name, False, value, False))
            self._binding_plan = plan
        return self._binding_plan

    def bound_devices(self, input_name):
        """Device names bound to a device input (empty for value inputs)."""
        value = self.bindings.get(input_name)
        if value is None:
            return []
        names = value if isinstance(value, list) else [value]
        return [n for n in names if isinstance(n, str)]

    def __repr__(self):
        return "AppInstance(%r)" % (self.name,)


class ResolvedSubscription:
    """A subscription bound to a concrete device (or location/app source)."""

    __slots__ = ("app", "handler", "source_kind", "device", "attribute", "value")

    def __init__(self, app, handler, source_kind, device, attribute, value):
        self.app = app
        self.handler = handler
        self.source_kind = source_kind  # "device" | "location" | "app"
        self.device = device
        self.attribute = attribute
        self.value = value

    def __repr__(self):
        return "ResolvedSubscription(%s/%s/%s -> %s.%s)" % (
            self.device or self.source_kind, self.attribute, self.value or "...",
            self.app.name, self.handler)


class IoTSystem:
    """Devices, installed apps, subscription routing, and the transition
    relations used by the explorer."""

    def __init__(self, devices, apps, contacts=(), modes=("Home", "Away", "Night"),
                 initial_mode="Home", association=None, http_allowed=(),
                 enable_failures=False, user_mode_events=False,
                 use_compiled=True):
        #: name -> DeviceInstance
        self.devices = dict(devices)
        #: execute handlers through the closure compiler (the tree
        #: interpreter remains available as the ``--no-compile`` fallback
        #: and differential-testing oracle)
        self.use_compiled = use_compiled
        #: optional ``(app_instance, ctx) -> executor-or-None`` hook; the
        #: codegen tier installs one so cascades run generated modules
        #: (``None`` from the hook falls back to the tiers below)
        self.executor_factory = None
        #: installed apps in install order
        self.apps = list(apps)
        self.contacts = list(contacts)
        self.modes = list(modes)
        self.initial_mode = initial_mode
        self.association = dict(association or {})
        self.http_allowed = set(http_allowed)
        self.enable_failures = enable_failures
        #: the active fault-injection profile (see :mod:`repro.model.faults`);
        #: the engine sets this from ``EngineOptions.scenario``.  Orthogonal
        #: to ``enable_failures`` (the §8 offline enumeration): both extend
        #: :meth:`failure_scenarios` additively
        self.scenario_profile = CLEAN
        #: when set, the user changing the location mode from the companion
        #: app is an environment choice (used by the Output Analyzer so
        #: mode-triggered apps can be vetted in isolation, §9/§10.3)
        self.user_mode_events = user_mode_events
        self.subscriptions = self._resolve_subscriptions()
        # transition-relation caches, built lazily on first use; all derive
        # from construction-time data (subscriptions, specs, association)
        self._sub_index = None
        self._interesting_pairs = None
        self._sensor_event_table = None
        self._static_choices = None
        self._state_schema = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def _resolve_subscriptions(self):
        resolved = []
        for app in self.apps:
            for sub in app.smart_app.subscriptions:
                if sub.source == "location":
                    resolved.append(ResolvedSubscription(
                        app, sub.handler, "location", None,
                        sub.attribute or "mode", sub.value))
                elif sub.source == "app":
                    resolved.append(ResolvedSubscription(
                        app, sub.handler, "app", None, "app", None))
                else:
                    for device_name in app.bound_devices(sub.source):
                        resolved.append(ResolvedSubscription(
                            app, sub.handler, "device", device_name,
                            sub.attribute, sub.value))
        return resolved

    def app(self, name):
        for app in self.apps:
            if app.name == name:
                return app
        return None

    # ------------------------------------------------------------------
    # roles (device association info)
    # ------------------------------------------------------------------

    def role(self, name):
        value = self.association.get(name)
        if isinstance(value, list):
            return value[0] if value else None
        return value

    def role_list(self, name):
        value = self.association.get(name)
        if value is None:
            return []
        if isinstance(value, list):
            return list(value)
        return [value]

    def has_role(self, name):
        value = self.association.get(name)
        if isinstance(value, list):
            return bool(value)
        return value is not None

    @property
    def away_mode(self):
        return self.association.get("away_mode", "Away")

    @property
    def home_mode(self):
        return self.association.get("home_mode", "Home")

    @property
    def night_mode(self):
        return self.association.get("night_mode", "Night")

    def is_http_allowed(self, app_name, url):
        return app_name in self.http_allowed

    # ------------------------------------------------------------------
    # state & events
    # ------------------------------------------------------------------

    def initial_state(self):
        # seeded through the mutator methods, not the raw dict views:
        # a raw view marks the root state escaped, which would disable
        # copy-on-write sharing for every depth-1 branch
        state = ModelState(mode=self.initial_mode)
        for name, instance in self.devices.items():
            for attribute, value in instance.initial_attributes().items():
                state.set_attribute(name, attribute, value)
        for app in self.apps:
            state.app_state(app.name)
            # cron-style schedules registered in installed()/initialize()
            # exist from the start; runIn timers appear dynamically
            for api, handler, _line in app.smart_app.schedules:
                if api.startswith(("schedule", "runEvery", "runDaily")):
                    state.add_schedule(app.name, handler, periodic=True)
        return state.seal()

    def digest(self, properties=None, options=None):
        """Deterministic content digest of this bound system.

        Canonical serialization of devices (full spec surface), installed
        apps (handler sources + bindings) and deployment data, hashed with
        SHA-256 - invariant under device/app declaration order, changed by
        any handler body, device attribute or deployment edit.  Passing
        ``properties``/``options`` extends the digest to a full
        verification identity (the vetting service's cache key space);
        see :mod:`repro.service.digest`.
        """
        from repro.service.digest import system_digest
        return system_digest(self, properties=properties, options=options)

    def state_schema(self):
        """The packed-state layout of this system (compiled once).

        Keys every visited store that packs or interns states; derives
        only from construction-time data (device specs, installed apps).
        """
        if self._state_schema is None:
            from repro.model.schema import StateSchema
            self._state_schema = StateSchema(self)
        return self._state_schema

    def _subscriber_index(self):
        """Routing tables keyed by event source, preserving install order."""
        if self._sub_index is None:
            device_index, app_index, fake_index, location_subs = {}, {}, {}, []
            for sub in self.subscriptions:
                if sub.source_kind == "device":
                    device_index.setdefault(
                        (sub.device, sub.attribute), []).append(
                            (sub.app, sub.handler, sub.value))
                    # Fake events reach every subscription on the attribute.
                    fake_index.setdefault(sub.attribute, []).append(
                        (sub.app, sub.handler, sub.value))
                elif sub.source_kind == "location":
                    location_subs.append(sub)
                elif sub.source_kind == "app":
                    app_index.setdefault(sub.app.name, []).append(
                        (sub.app, sub.handler, None))
            self._sub_index = (device_index, location_subs, app_index,
                               fake_index)
        return self._sub_index

    def subscribers_for(self, event):
        """Subscribed (app, handler, value filter) triples, install order."""
        device_index, location_subs, app_index, fake_index = (
            self._subscriber_index())
        if event.source == DEVICE:
            return device_index.get((event.device, event.attribute), [])
        if event.source == LOCATION:
            matches = []
            for sub in location_subs:
                if sub.attribute in (event.attribute, None, "mode"):
                    if event.attribute == "mode" and sub.attribute != "mode":
                        continue
                    if (event.attribute != "mode"
                            and sub.attribute != event.attribute):
                        continue
                    matches.append((sub.app, sub.handler, sub.value))
            return matches
        if event.source == APP:
            return app_index.get(event.app, [])
        if event.source == FAKE:
            return fake_index.get(event.attribute, [])
        return []

    def _interesting_device_attributes(self):
        """(device, attribute) pairs worth generating external events for:
        subscribed attributes plus attributes referenced by property roles.

        Depends only on construction-time data, so it is computed once."""
        if self._interesting_pairs is not None:
            return self._interesting_pairs
        pairs = []
        seen = set()
        for sub in self.subscriptions:
            if sub.source_kind != "device":
                continue
            device = self.devices.get(sub.device)
            if device is None:
                continue
            if sub.attribute in device.spec.sensor_attributes:
                key = (sub.device, sub.attribute)
                if key not in seen:
                    seen.add(key)
                    pairs.append(key)
        for role_value in self.association.values():
            names = role_value if isinstance(role_value, list) else [role_value]
            for name in names:
                device = self.devices.get(name) if isinstance(name, str) else None
                if device is None:
                    continue
                for attribute in device.spec.sensor_attributes:
                    key = (name, attribute)
                    if key not in seen:
                        seen.add(key)
                        pairs.append(key)
        if not pairs:
            for name, device in self.devices.items():
                for attribute in device.spec.sensor_attributes:
                    pairs.append((name, attribute))
        self._interesting_pairs = pairs
        return pairs

    def _sensor_events(self):
        """Pre-built sensor :class:`ExternalEvent` objects per attribute.

        Events are immutable, so one object per (device, attribute, value)
        is shared by every transition that injects it; the per-state work
        in :meth:`external_choices` reduces to filtering out the current
        value."""
        if self._sensor_event_table is None:
            table = []
            for device_name, attribute in self._interesting_device_attributes():
                spec = self.devices[device_name].spec.sensor_attributes.get(
                    attribute)
                values = list(spec.values) if spec is not None else []
                table.append((device_name, attribute, [
                    (value, ExternalEvent("sensor", device=device_name,
                                          attribute=attribute, value=value))
                    for value in values]))
            self._sensor_event_table = table
        return self._sensor_event_table

    def _state_independent_choices(self):
        """App-touch and sunrise/sunset choices (fixed per system)."""
        if self._static_choices is None:
            choices = []
            touched = set()
            for sub in self.subscriptions:
                if sub.source_kind == "app" and sub.app.name not in touched:
                    touched.add(sub.app.name)
                    choices.append(ExternalEvent("touch", app=sub.app.name))
            for sub in self.subscriptions:
                if sub.source_kind == "location" and sub.attribute in (
                        "sunrise", "sunset"):
                    choices.append(ExternalEvent("environment",
                                                 attribute=sub.attribute))
            self._static_choices = choices
        return self._static_choices

    def external_choices(self, state):
        """Algorithm 1 line 2: the environment's choices at this point."""
        choices = []
        for device_name, attribute, events in self._sensor_events():
            current = state.attribute(device_name, attribute)
            for value, event in events:
                if value != current:
                    choices.append(event)
        choices.extend(self._state_independent_choices())
        for app_name, handler, _periodic in state.schedules:
            choices.append(ExternalEvent("timer", app=app_name, handler=handler))
        if self.user_mode_events:
            for mode in self.modes:
                if mode != state.mode:
                    choices.append(ExternalEvent("mode", value=mode))
        return choices

    def failure_scenarios(self, ext):
        """Failure enumeration for one external event: the §8 offline
        scenarios (when ``enable_failures``) plus the active scenario
        profile's variants (when non-clean)."""
        scenarios = [NO_FAILURE]
        if self.enable_failures:
            if ext.kind == "sensor":
                scenarios.append(FailureScenario(FailureScenario.SENSOR_DROP,
                                                 ext.device))
            for name, device in sorted(self.devices.items()):
                if device.spec.is_actuator:
                    scenarios.append(FailureScenario(
                        FailureScenario.ACTUATOR_DROP, name))
        profile = self.scenario_profile
        if not profile.is_clean:
            scenarios.extend(profile.variants(self, ext))
        return scenarios

    # ------------------------------------------------------------------
    # transition relations
    # ------------------------------------------------------------------

    def transitions(self, state, monitor_factory, event_filter=None):
        """Sequential design: yield (label, new_state, violations, steps).

        ``event_filter`` (optional) vetoes external events *before* their
        cascades execute - the engine's independence reduction plugs in
        here so skipped interleavings cost nothing.
        """
        for ext in self.external_choices(state):
            if event_filter is not None and not event_filter(ext):
                continue
            for scenario in self.failure_scenarios(ext):
                new_state = state.copy()
                new_state.cascade_commands = ()
                monitor = monitor_factory()
                cascade = Cascade(self, new_state, monitor, scenario=scenario)
                violations = cascade.run_external(ext)
                # the cascade's executors are gone: drop the pessimistic
                # escaped-reference treatment so the state fingerprints
                # from cache and branches with full COW sharing
                new_state.seal()
                suffix = scenario.label()
                yield (ext.label() + suffix if suffix else ext.label(),
                       new_state, True, violations, cascade.steps)

    def transitions_concurrent(self, state, monitor_factory, externals_left,
                               event_filter=None):
        """Concurrent design: interleave pending dispatches and injections."""
        for index in range(len(state.pending)):
            new_state = state.copy()
            monitor = monitor_factory()
            cascade = Cascade(self, new_state, monitor, defer_dispatch=True)
            violations = cascade.dispatch_one_pending(index)
            if not new_state.pending:
                new_state.cascade_commands = ()
            new_state.seal()
            yield ("dispatch %s" % state.pending[index].describe(), new_state,
                   False, violations, cascade.steps)
        # A new external event is only injected once the previous event's
        # cyber events have drained: interleaving is per-cascade, so the
        # "single external event" scope of the conflict/repeat checks is
        # preserved (Algorithm 1 line 16).
        if externals_left > 0 and not state.pending:
            for ext in self.external_choices(state):
                if event_filter is not None and not event_filter(ext):
                    continue
                for scenario in self.failure_scenarios(ext):
                    new_state = state.copy()
                    new_state.cascade_commands = ()
                    monitor = monitor_factory()
                    cascade = Cascade(self, new_state, monitor,
                                      scenario=scenario, defer_dispatch=True)
                    violations = cascade.run_external(ext)
                    new_state.seal()
                    yield (ext.label() + scenario.label(), new_state, True,
                           violations, cascade.steps)

    def __repr__(self):
        return "IoTSystem(devices=%d, apps=%d, subs=%d)" % (
            len(self.devices), len(self.apps), len(self.subscriptions))
