"""The bound IoT system: devices + app instances + subscriptions.

An :class:`IoTSystem` is the transition system the checker explores.  It
offers the sequential transition relation (Algorithm 1: one external event,
run-to-completion cascade) and the concurrent one (§8 Concurrency Model:
interleavings of pending internal events), both with optional failure
enumeration.
"""

from repro.model.cascade import Cascade, FailureScenario, NO_FAILURE
from repro.model.events import APP, DEVICE, FAKE, LOCATION, ExternalEvent
from repro.model.handles import DeviceGroup, DeviceHandle
from repro.model.state import ModelState
from repro.translator.lowering import lower_program


class AppInstance:
    """One installed app: parsed definition + lowered IR + input bindings."""

    def __init__(self, smart_app, bindings, instance_name=None):
        self.smart_app = smart_app
        self.name = instance_name or smart_app.name
        self.bindings = dict(bindings)
        self._ir = lower_program(smart_app.program)
        self._methods = {m.name: m for m in self._ir.methods}

    def method(self, name):
        return self._methods.get(name)

    def binding_names(self):
        return list(self.bindings.keys())

    def binding(self, input_name):
        return self.bindings.get(input_name)

    def materialize(self, input_name, ctx):
        """Turn a binding into the runtime value app code sees."""
        value = self.bindings.get(input_name)
        if value is None:
            return None
        declaration = self.smart_app.input(input_name)
        if declaration is not None and declaration.is_device:
            names = value if isinstance(value, list) else [value]
            handles = []
            for name in names:
                instance = ctx.system.devices.get(name)
                if instance is not None:
                    handles.append(DeviceHandle(instance, ctx, self.name))
            if declaration.multiple or len(handles) > 1:
                return DeviceGroup(handles)
            return handles[0] if handles else None
        return value

    def bound_devices(self, input_name):
        """Device names bound to a device input (empty for value inputs)."""
        value = self.bindings.get(input_name)
        if value is None:
            return []
        names = value if isinstance(value, list) else [value]
        return [n for n in names if isinstance(n, str)]

    def __repr__(self):
        return "AppInstance(%r)" % (self.name,)


class ResolvedSubscription:
    """A subscription bound to a concrete device (or location/app source)."""

    __slots__ = ("app", "handler", "source_kind", "device", "attribute", "value")

    def __init__(self, app, handler, source_kind, device, attribute, value):
        self.app = app
        self.handler = handler
        self.source_kind = source_kind  # "device" | "location" | "app"
        self.device = device
        self.attribute = attribute
        self.value = value

    def __repr__(self):
        return "ResolvedSubscription(%s/%s/%s -> %s.%s)" % (
            self.device or self.source_kind, self.attribute, self.value or "...",
            self.app.name, self.handler)


class IoTSystem:
    """Devices, installed apps, subscription routing, and the transition
    relations used by the explorer."""

    def __init__(self, devices, apps, contacts=(), modes=("Home", "Away", "Night"),
                 initial_mode="Home", association=None, http_allowed=(),
                 enable_failures=False, user_mode_events=False):
        #: name -> DeviceInstance
        self.devices = dict(devices)
        #: installed apps in install order
        self.apps = list(apps)
        self.contacts = list(contacts)
        self.modes = list(modes)
        self.initial_mode = initial_mode
        self.association = dict(association or {})
        self.http_allowed = set(http_allowed)
        self.enable_failures = enable_failures
        #: when set, the user changing the location mode from the companion
        #: app is an environment choice (used by the Output Analyzer so
        #: mode-triggered apps can be vetted in isolation, §9/§10.3)
        self.user_mode_events = user_mode_events
        self.subscriptions = self._resolve_subscriptions()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def _resolve_subscriptions(self):
        resolved = []
        for app in self.apps:
            for sub in app.smart_app.subscriptions:
                if sub.source == "location":
                    resolved.append(ResolvedSubscription(
                        app, sub.handler, "location", None,
                        sub.attribute or "mode", sub.value))
                elif sub.source == "app":
                    resolved.append(ResolvedSubscription(
                        app, sub.handler, "app", None, "app", None))
                else:
                    for device_name in app.bound_devices(sub.source):
                        resolved.append(ResolvedSubscription(
                            app, sub.handler, "device", device_name,
                            sub.attribute, sub.value))
        return resolved

    def app(self, name):
        for app in self.apps:
            if app.name == name:
                return app
        return None

    # ------------------------------------------------------------------
    # roles (device association info)
    # ------------------------------------------------------------------

    def role(self, name):
        value = self.association.get(name)
        if isinstance(value, list):
            return value[0] if value else None
        return value

    def role_list(self, name):
        value = self.association.get(name)
        if value is None:
            return []
        if isinstance(value, list):
            return list(value)
        return [value]

    def has_role(self, name):
        value = self.association.get(name)
        if isinstance(value, list):
            return bool(value)
        return value is not None

    @property
    def away_mode(self):
        return self.association.get("away_mode", "Away")

    @property
    def home_mode(self):
        return self.association.get("home_mode", "Home")

    @property
    def night_mode(self):
        return self.association.get("night_mode", "Night")

    def is_http_allowed(self, app_name, url):
        return app_name in self.http_allowed

    # ------------------------------------------------------------------
    # state & events
    # ------------------------------------------------------------------

    def initial_state(self):
        # seeded through the mutator methods, not the raw dict views:
        # a raw view marks the root state escaped, which would disable
        # copy-on-write sharing for every depth-1 branch
        state = ModelState(mode=self.initial_mode)
        for name, instance in self.devices.items():
            for attribute, value in instance.initial_attributes().items():
                state.set_attribute(name, attribute, value)
        for app in self.apps:
            state.app_state(app.name)
            # cron-style schedules registered in installed()/initialize()
            # exist from the start; runIn timers appear dynamically
            for api, handler, _line in app.smart_app.schedules:
                if api.startswith(("schedule", "runEvery", "runDaily")):
                    state.add_schedule(app.name, handler, periodic=True)
        return state

    def subscribers_for(self, event):
        """Subscribed (app, handler, value filter) triples, install order."""
        matches = []
        for sub in self.subscriptions:
            if event.source == DEVICE:
                if (sub.source_kind == "device" and sub.device == event.device
                        and sub.attribute == event.attribute):
                    matches.append((sub.app, sub.handler, sub.value))
            elif event.source == LOCATION:
                if sub.source_kind == "location" and sub.attribute in (
                        event.attribute, None, "mode"):
                    if event.attribute == "mode" and sub.attribute != "mode":
                        continue
                    if event.attribute != "mode" and sub.attribute != event.attribute:
                        continue
                    matches.append((sub.app, sub.handler, sub.value))
            elif event.source == APP:
                if sub.source_kind == "app" and sub.app.name == event.app:
                    matches.append((sub.app, sub.handler, None))
            elif event.source == FAKE:
                # Fake events reach every subscription on the same attribute.
                if (sub.source_kind == "device"
                        and sub.attribute == event.attribute):
                    matches.append((sub.app, sub.handler, sub.value))
        return matches

    def _interesting_device_attributes(self):
        """(device, attribute) pairs worth generating external events for:
        subscribed attributes plus attributes referenced by property roles."""
        pairs = []
        seen = set()
        for sub in self.subscriptions:
            if sub.source_kind != "device":
                continue
            device = self.devices.get(sub.device)
            if device is None:
                continue
            if sub.attribute in device.spec.sensor_attributes:
                key = (sub.device, sub.attribute)
                if key not in seen:
                    seen.add(key)
                    pairs.append(key)
        for role_value in self.association.values():
            names = role_value if isinstance(role_value, list) else [role_value]
            for name in names:
                device = self.devices.get(name) if isinstance(name, str) else None
                if device is None:
                    continue
                for attribute in device.spec.sensor_attributes:
                    key = (name, attribute)
                    if key not in seen:
                        seen.add(key)
                        pairs.append(key)
        if not pairs:
            for name, device in self.devices.items():
                for attribute in device.spec.sensor_attributes:
                    pairs.append((name, attribute))
        return pairs

    def external_choices(self, state):
        """Algorithm 1 line 2: the environment's choices at this point."""
        choices = []
        for device_name, attribute in self._interesting_device_attributes():
            instance = self.devices[device_name]
            current = state.attribute(device_name, attribute)
            for value in instance.sensor_event_values(attribute, current):
                choices.append(ExternalEvent("sensor", device=device_name,
                                             attribute=attribute, value=value))
        touched = set()
        for sub in self.subscriptions:
            if sub.source_kind == "app" and sub.app.name not in touched:
                touched.add(sub.app.name)
                choices.append(ExternalEvent("touch", app=sub.app.name))
        for sub in self.subscriptions:
            if sub.source_kind == "location" and sub.attribute in (
                    "sunrise", "sunset"):
                choices.append(ExternalEvent("environment",
                                             attribute=sub.attribute))
        for app_name, handler, _periodic in state.schedules:
            choices.append(ExternalEvent("timer", app=app_name, handler=handler))
        if self.user_mode_events:
            for mode in self.modes:
                if mode != state.mode:
                    choices.append(ExternalEvent("mode", value=mode))
        return choices

    def failure_scenarios(self, ext):
        """§8 failure enumeration for one external event."""
        scenarios = [NO_FAILURE]
        if not self.enable_failures:
            return scenarios
        if ext.kind == "sensor":
            scenarios.append(FailureScenario(FailureScenario.SENSOR_DROP,
                                             ext.device))
        for name, device in sorted(self.devices.items()):
            if device.spec.is_actuator:
                scenarios.append(FailureScenario(FailureScenario.ACTUATOR_DROP,
                                                 name))
        return scenarios

    # ------------------------------------------------------------------
    # transition relations
    # ------------------------------------------------------------------

    def transitions(self, state, monitor_factory):
        """Sequential design: yield (label, new_state, violations, steps)."""
        for ext in self.external_choices(state):
            for scenario in self.failure_scenarios(ext):
                new_state = state.copy()
                new_state.cascade_commands = ()
                monitor = monitor_factory()
                cascade = Cascade(self, new_state, monitor, scenario=scenario)
                violations = cascade.run_external(ext)
                yield (ext.label() + scenario.label(), new_state, True,
                       violations, cascade.steps)

    def transitions_concurrent(self, state, monitor_factory, externals_left):
        """Concurrent design: interleave pending dispatches and injections."""
        for index in range(len(state.pending)):
            new_state = state.copy()
            monitor = monitor_factory()
            cascade = Cascade(self, new_state, monitor, defer_dispatch=True)
            violations = cascade.dispatch_one_pending(index)
            if not new_state.pending:
                new_state.cascade_commands = ()
            yield ("dispatch %s" % state.pending[index].describe(), new_state,
                   False, violations, cascade.steps)
        # A new external event is only injected once the previous event's
        # cyber events have drained: interleaving is per-cascade, so the
        # "single external event" scope of the conflict/repeat checks is
        # preserved (Algorithm 1 line 16).
        if externals_left > 0 and not state.pending:
            for ext in self.external_choices(state):
                for scenario in self.failure_scenarios(ext):
                    new_state = state.copy()
                    new_state.cascade_commands = ()
                    monitor = monitor_factory()
                    cascade = Cascade(self, new_state, monitor,
                                      scenario=scenario, defer_dispatch=True)
                    violations = cascade.run_external(ext)
                    yield (ext.label() + scenario.label(), new_state, True,
                           violations, cascade.steps)

    def __repr__(self):
        return "IoTSystem(devices=%d, apps=%d, subs=%d)" % (
            len(self.devices), len(self.apps), len(self.subscriptions))
