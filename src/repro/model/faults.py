"""Named fault-injection scenario profiles: lossy-environment modeling.

The paper's §8 enumeration (sensor offline / actuator offline, gated on
``--failures``) assumes the *platform* is ideal: every report that is sent
arrives exactly once, in order, and app reads always see fresh state.  Real
deployments violate all three.  A :class:`ScenarioProfile` layers one named
nonideality onto the transition relation as extra
:class:`~repro.model.events.FailureScenario` variants enumerated per
external event — pluggable decorators over the event relation, orthogonal
to (and composable with) the §8 ``enable_failures`` enumeration.

Profiles:

``clean``
    Ideal delivery (the default); byte-identical to the pre-profile
    transition relation.
``lossy``
    A sensor report may be lost in transit: the physical attribute still
    changes, but no app is notified.
``delayed``
    Cascade-internal cyber events may be delivered newest-first (LIFO)
    instead of in order, modeling reordered/deferred delivery.
``duplicated``
    A sensor report may be delivered twice, re-triggering subscribers.
``device-death``
    One device dies for the cascade: it stops reporting (if it is the
    origin sensor) and silently drops every command sent to it.
``stale-reads``
    App reads of the origin sensor's attribute return the pre-event value
    for the whole cascade (a stale platform cache); the monitor still
    checks invariants against true physical state.

Every non-clean profile disables sleep-set reduction (see
``ExplorationEngine._make_reducer``) — fault-suffixed labels are already
treated as unidentifiable by :mod:`repro.deps.independence`, and disabling
the reducer outright for faulted relations is the conservatively sound
composition the profiles choose.
"""

from repro.model.events import FailureScenario


class ScenarioProfile:
    """One named nonideality: enumerates extra failure scenarios per event.

    ``variants`` is a ``(system, ext) -> [FailureScenario, ...]`` callable
    returning the *extra* scenarios to explore for one external event,
    beyond the clean run (which is always explored).  ``None`` marks the
    clean profile.
    """

    __slots__ = ("name", "description", "_variants")

    def __init__(self, name, description, variants=None):
        self.name = name
        self.description = description
        self._variants = variants

    @property
    def is_clean(self):
        return self._variants is None

    def variants(self, system, ext):
        """Extra scenarios to enumerate for ``ext`` (empty when clean)."""
        if self._variants is None:
            return []
        return self._variants(system, ext)

    def __repr__(self):
        return "ScenarioProfile(%r)" % (self.name,)


def _lossy(system, ext):
    if ext.kind != "sensor":
        return []
    return [FailureScenario(FailureScenario.EVENT_DROP, ext.device)]


def _delayed(system, ext):
    return [FailureScenario(FailureScenario.REORDER)]


def _duplicated(system, ext):
    if ext.kind != "sensor":
        return []
    return [FailureScenario(FailureScenario.DUPLICATE, ext.device)]


def _device_death(system, ext):
    # mirror the §8 actuator enumeration: the origin sensor (if any) plus
    # every actuator, each dying for one cascade, in deterministic order
    scenarios = []
    dead = set()
    if ext.kind == "sensor":
        dead.add(ext.device)
        scenarios.append(FailureScenario(FailureScenario.DEVICE_DEATH,
                                         ext.device))
    for name, device in sorted(system.devices.items()):
        if device.spec.is_actuator and name not in dead:
            scenarios.append(FailureScenario(FailureScenario.DEVICE_DEATH,
                                             name))
    return scenarios


def _stale_reads(system, ext):
    if ext.kind != "sensor":
        return []
    return [FailureScenario(FailureScenario.STALE_READ, ext.device)]


CLEAN = ScenarioProfile(
    "clean", "ideal delivery: every report arrives exactly once, in order")
LOSSY = ScenarioProfile(
    "lossy", "a sensor report may be lost in transit", _lossy)
DELAYED = ScenarioProfile(
    "delayed", "cascade events may be delivered newest-first", _delayed)
DUPLICATED = ScenarioProfile(
    "duplicated", "a sensor report may be delivered twice", _duplicated)
DEVICE_DEATH = ScenarioProfile(
    "device-death", "one device dies mid-cascade: no reports, no commands",
    _device_death)
STALE_READS = ScenarioProfile(
    "stale-reads", "app reads return the pre-event sensor value",
    _stale_reads)

#: registry, in documentation order; ``clean`` first (the default)
PROFILES = {profile.name: profile for profile in (
    CLEAN, LOSSY, DELAYED, DUPLICATED, DEVICE_DEATH, STALE_READS)}


def scenario_names():
    """The valid ``--scenario`` values, in documentation order."""
    return tuple(PROFILES)


def resolve_scenario(name):
    """A :class:`ScenarioProfile` from its name (idempotent on profiles)."""
    if isinstance(name, ScenarioProfile):
        return name
    profile = PROFILES.get(name)
    if profile is None:
        raise ValueError("unknown scenario %r (choose from %s)"
                         % (name, ", ".join(PROFILES)))
    return profile
