"""Events: the cyber and physical occurrences the model reasons about.

Two flavours (Figure 2 of the paper):

* :class:`ExternalEvent` - a *physical* event chosen by the environment
  (Algorithm 1 line 2 selects one per iteration): a sensor attribute change,
  an app-touch, a timer firing, or a sunrise/sunset environment event.
* :class:`Event` - a *cyber* event flowing through the platform: a device
  state-change notification, a location-mode change, or a fake event forged
  by an app.
"""

#: event sources
DEVICE = "device"
LOCATION = "location"
APP = "app"
TIMER = "time"
FAKE = "fake"


class Event:
    """A cyber event dispatched to subscribed apps."""

    __slots__ = ("source", "device", "attribute", "value", "app")

    def __init__(self, source, device=None, attribute=None, value=None, app=None):
        self.source = source
        self.device = device
        self.attribute = attribute
        self.value = value
        self.app = app

    def describe(self):
        if self.source == DEVICE:
            return "%s/%s=%s" % (self.device, self.attribute, self.value)
        if self.source == LOCATION:
            return "location/%s=%s" % (self.attribute, self.value)
        if self.source == APP:
            return "app/touch(%s)" % (self.app,)
        if self.source == FAKE:
            return "fake/%s=%s" % (self.attribute, self.value)
        return "%s/%s=%s" % (self.source, self.attribute, self.value)

    def __repr__(self):
        return "Event(%s)" % (self.describe(),)


class FailureScenario:
    """Which nonideality (if any) afflicts this external event's cascade.

    The first two fault kinds reproduce §8 of the paper ("the sensor is
    available/online [or] unavailable/offline ... an actuator may be either
    online or offline"); the rest extend the enumeration to the lossy-
    environment profiles in :mod:`repro.model.faults`.
    """

    NONE = "none"
    SENSOR_DROP = "sensor-drop"        # the originating sensor fails to report
    ACTUATOR_DROP = "actuator-drop"    # one actuator drops all commands
    EVENT_DROP = "event-drop"          # the report is lost in transit (lossy)
    DUPLICATE = "duplicate"            # the report is delivered twice
    REORDER = "reorder"                # cascade events delivered newest-first
    DEVICE_DEATH = "device-death"      # one device stops reporting and acting
    STALE_READ = "stale-read"          # app reads see the pre-event value

    __slots__ = ("kind", "device")

    def __init__(self, kind=NONE, device=None):
        self.kind = kind
        self.device = device

    def label(self):
        if self.kind == self.NONE:
            return ""
        if self.kind == self.SENSOR_DROP:
            return " [sensor offline]"
        if self.kind == self.EVENT_DROP:
            return " [report lost]"
        if self.kind == self.DUPLICATE:
            return " [duplicated]"
        if self.kind == self.REORDER:
            return " [delayed]"
        if self.kind == self.DEVICE_DEATH:
            return " [%s dead]" % (self.device,)
        if self.kind == self.STALE_READ:
            return " [stale reads]"
        return " [%s offline]" % (self.device,)

    def drops_command(self, device_name):
        """True when commands sent to ``device_name`` are dropped."""
        if self.kind == self.ACTUATOR_DROP or self.kind == self.DEVICE_DEATH:
            return self.device == device_name
        return False

    def drops_report(self, device_name):
        """True when ``device_name``'s sensor report is silently lost."""
        if self.kind == self.SENSOR_DROP or self.kind == self.EVENT_DROP:
            return True
        if self.kind == self.DEVICE_DEATH:
            return self.device == device_name
        return False

    def __repr__(self):
        return "FailureScenario(%s, %r)" % (self.kind, self.device)


NO_FAILURE = FailureScenario()


class ExternalEvent:
    """One environment choice at the top of the main event loop.

    ``kind`` distinguishes:

    * ``"sensor"`` - physical change of a sensor attribute
      (``device``/``attribute``/``value`` set);
    * ``"touch"`` - the user taps an app in the companion app (``app`` set);
    * ``"timer"`` - a scheduled callback fires (``app``/``handler`` set);
    * ``"environment"`` - sunrise/sunset (``attribute`` = event name).
    """

    __slots__ = ("kind", "device", "attribute", "value", "app", "handler",
                 "_label")

    def __init__(self, kind, device=None, attribute=None, value=None,
                 app=None, handler=None):
        self.kind = kind
        self.device = device
        self.attribute = attribute
        self.value = value
        self.app = app
        self.handler = handler
        self._label = None

    def describe(self):
        # cached: external events are immutable and (via the system's
        # pre-built choice tables) shared across many transitions, each of
        # which stamps the label into its trace
        label = self._label
        if label is None:
            if self.kind == "sensor":
                label = "%s/%s=%s" % (self.device, self.attribute, self.value)
            elif self.kind == "touch":
                label = "app/touch(%s)" % (self.app,)
            elif self.kind == "timer":
                label = "timer(%s.%s)" % (self.app, self.handler)
            elif self.kind == "mode":
                label = "user/mode=%s" % (self.value,)
            else:
                label = "environment/%s" % (self.attribute,)
            self._label = label
        return label

    def label(self):
        return self.describe()

    def __repr__(self):
        return "ExternalEvent(%s)" % (self.describe(),)
