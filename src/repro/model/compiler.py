"""AST→closure compilation of smart-app handlers.

The tree interpreter (:mod:`repro.model.interpreter`) re-walks the lowered
Groovy AST on every handler invocation, paying a ``getattr`` dispatch plus
an operation-budget tick per node.  Exploration executes the same handful
of handlers millions of times, so this module compiles each method of an
app's IR *once* into a tree of Python closures: per-node dispatch happens
at compile time, and execution is plain closure calls over the live scope
chain.

Division of labour:

* :func:`compile_program` walks the IR and produces a
  :class:`CompiledProgram` (one :class:`CompiledMethod` per method, its
  body a ``fn(rt, scopes) -> value`` closure tree);
* :class:`CompiledExecutor` is the runtime the closures call back into.
  It *subclasses* :class:`~repro.model.interpreter.Interpreter` and reuses
  every semantic helper (``_lookup``, ``_binary``, ``_platform_api``,
  ``_invoke_on``, ...) so both back-ends share one definition of the
  language semantics - the property that makes the interpreter a
  meaningful differential-testing oracle for the compiler.

Divergences from the interpreter, by design:

* the operation budget ticks once per *statement* and per loop iteration
  instead of per AST node, so compiled code spends the 50k-op budget more
  slowly; runaway loops still trip it;
* a construct the compiler cannot handle raises :class:`CompileError` at
  compile time and the whole app falls back to tree interpretation
  (``AppInstance.compiled_program()`` memoizes the failure), whereas the
  interpreter would fail only if the node were actually executed.
"""

from repro.groovy import ast
from repro.model import handles
from repro.model.interpreter import (
    DEFAULT_OP_BUDGET,
    ClosureValue,
    ExecutionError,
    Interpreter,
    _Break,
    _Continue,
    _GroovyThrow,
    _Return,
    assign_index_value,
    assign_property_value,
    get_property_value,
    index_value,
)
from repro.translator.builtins import is_groovy_truthy, to_groovy_string


class CompileError(Exception):
    """Raised when an app's IR contains a construct we cannot compile."""


class CompiledClosure(ClosureValue):
    """A closure literal compiled to a body function.

    Subclasses :class:`ClosureValue` so every ``isinstance`` check in the
    shared interpreter machinery (``_invoke_on``, ``_handler_arg``, the
    local-closure call path) treats it like an ordinary closure value;
    ``body`` holds the compiled ``fn(rt, scopes)`` instead of an AST block.
    """

    __slots__ = ()


class CompiledMethod:
    """One compiled method: parameters, default thunks, body closure."""

    __slots__ = ("name", "params", "defaults", "body")

    def __init__(self, name, params, defaults, body):
        self.name = name
        self.params = params
        self.defaults = defaults
        self.body = body

    def __repr__(self):
        return "CompiledMethod(%r)" % (self.name,)


class CompiledProgram:
    """All compiled methods of one app's IR."""

    __slots__ = ("methods",)

    def __init__(self, methods):
        self.methods = methods

    def __repr__(self):
        return "CompiledProgram(methods=%d)" % (len(self.methods),)


def compile_program(program):
    """Compile a lowered IR :class:`~repro.groovy.ast.Program`.

    Raises :class:`CompileError` when any method contains an
    uncompilable construct (callers fall back to the interpreter).
    """
    compiler = _Compiler()
    methods = {}
    for method in program.methods:
        methods[method.name] = compiler.compile_method(method)
    return CompiledProgram(methods)


class _Compiler:
    """Bottom-up compiler from IR nodes to ``fn(rt, scopes)`` closures."""

    # -- methods ------------------------------------------------------------

    def compile_method(self, method):
        defaults = [self.compile_expr(p.default) if p.default is not None
                    else None for p in method.params]
        return CompiledMethod(method.name, method.params, defaults,
                              self.compile_block(method.body))

    # -- statements ---------------------------------------------------------

    def compile_block(self, block):
        """One closure running a statement list; returns its last value."""
        thunks = [self.compile_stmt(stmt) for stmt in block.stmts]
        if not thunks:
            return _const_none
        if len(thunks) == 1:
            single = thunks[0]

            def run_one(rt, scopes):
                rt._tick()
                return single(rt, scopes)
            return run_one

        def run(rt, scopes):
            tick = rt._tick
            last = None
            for thunk in thunks:
                tick()
                last = thunk(rt, scopes)
            return last
        return run

    def compile_stmt(self, stmt):
        """Dispatch one IR statement to its ``_stmt_<Type>`` compiler."""
        method = getattr(self, "_stmt_%s" % type(stmt).__name__, None)
        if method is None:
            raise CompileError("cannot compile statement %s"
                               % type(stmt).__name__)
        return method(stmt)

    def _stmt_ExprStmt(self, stmt):
        return self.compile_expr(stmt.value)

    def _stmt_VarDecl(self, stmt):
        name = stmt.name
        value_t = (self.compile_expr(stmt.value)
                   if stmt.value is not None else None)
        if value_t is None:
            def declare_none(rt, scopes):
                scopes[-1][name] = None
                return None
            return declare_none

        def declare(rt, scopes):
            scopes[-1][name] = value_t(rt, scopes)
            return None
        return declare

    def _stmt_Assign(self, stmt):
        value_t = self.compile_expr(stmt.value)
        target = stmt.target
        if isinstance(target, ast.Name):
            name = target.id

            def assign_name(rt, scopes):
                rt._assign_name(name, value_t(rt, scopes), scopes)
                return None
            return assign_name
        if isinstance(target, ast.Property):
            obj_t = self.compile_expr(target.obj)
            prop_name, safe = target.name, target.safe

            def assign_property(rt, scopes):
                value = value_t(rt, scopes)
                obj = obj_t(rt, scopes)
                if obj is None and safe:
                    return None
                assign_property_value(obj, prop_name, value, stmt)
                return None
            return assign_property
        if isinstance(target, ast.Index):
            obj_t = self.compile_expr(target.obj)
            index_t = self.compile_expr(target.index)

            def assign_index(rt, scopes):
                value = value_t(rt, scopes)
                obj = obj_t(rt, scopes)
                assign_index_value(obj, index_t(rt, scopes), value, stmt)
                return None
            return assign_index

        def bad_target(rt, scopes):
            raise ExecutionError("invalid assignment target",
                                 stmt.line, stmt.col)
        return bad_target

    def _stmt_If(self, stmt):
        cond_t = self.compile_expr(stmt.cond)
        then_b = self.compile_block(stmt.then)
        else_b = (self.compile_block(stmt.orelse)
                  if stmt.orelse is not None else None)

        def run_if(rt, scopes):
            if is_groovy_truthy(cond_t(rt, scopes)):
                return then_b(rt, scopes + [{}])
            if else_b is not None:
                return else_b(rt, scopes + [{}])
            return None
        return run_if

    def _stmt_While(self, stmt):
        cond_t = self.compile_expr(stmt.cond)
        body_b = self.compile_block(stmt.body)

        def run_while(rt, scopes):
            while is_groovy_truthy(cond_t(rt, scopes)):
                rt._tick()
                try:
                    body_b(rt, scopes + [{}])
                except _Break:
                    break
                except _Continue:
                    continue
            return None
        return run_while

    def _stmt_ForIn(self, stmt):
        var = stmt.var
        iter_t = self.compile_expr(stmt.iterable)
        body_b = self.compile_block(stmt.body)

        def run_for(rt, scopes):
            for item in rt._iterate(iter_t(rt, scopes)):
                rt._tick()
                try:
                    body_b(rt, scopes + [{var: item}])
                except _Break:
                    break
                except _Continue:
                    continue
            return None
        return run_for

    def _stmt_Return(self, stmt):
        value_t = (self.compile_expr(stmt.value)
                   if stmt.value is not None else None)

        def run_return(rt, scopes):
            raise _Return(value_t(rt, scopes) if value_t is not None else None)
        return run_return

    def _stmt_Break(self, stmt):
        def run_break(rt, scopes):
            raise _Break()
        return run_break

    def _stmt_Continue(self, stmt):
        def run_continue(rt, scopes):
            raise _Continue()
        return run_continue

    def _stmt_Block(self, stmt):
        body_b = self.compile_block(stmt)

        def run_block(rt, scopes):
            return body_b(rt, scopes + [{}])
        return run_block

    def _stmt_Switch(self, stmt):
        subject_t = self.compile_expr(stmt.subject)
        arms = []
        for case in stmt.cases:
            value_ts = ([self.compile_expr(v) for v in case.values]
                        if case.values else None)
            arms.append((value_ts, self.compile_block(case.body)))

        def run_switch(rt, scopes):
            subject = subject_t(rt, scopes)
            default_body = None
            for value_ts, body in arms:
                if value_ts is None:
                    default_body = body
                    continue
                for value_t in value_ts:
                    if rt._case_matches(subject, value_t(rt, scopes)):
                        try:
                            return body(rt, scopes + [{}])
                        except _Break:
                            return None
            if default_body is not None:
                try:
                    return default_body(rt, scopes + [{}])
                except _Break:
                    return None
            return None
        return run_switch

    def _stmt_Try(self, stmt):
        body_b = self.compile_block(stmt.body)
        catch_var, catch_b = None, None
        if stmt.catches:
            _type, catch_var, block = stmt.catches[0]
            catch_b = self.compile_block(block)
        finally_b = (self.compile_block(stmt.finally_body)
                     if stmt.finally_body is not None else None)

        def run_try(rt, scopes):
            try:
                body_b(rt, scopes + [{}])
            except (_GroovyThrow, ExecutionError) as exc:
                if catch_b is not None:
                    value = (exc.value if isinstance(exc, _GroovyThrow)
                             else str(exc))
                    catch_b(rt, scopes + [{catch_var: value}])
                elif isinstance(exc, ExecutionError):
                    raise
            finally:
                if finally_b is not None:
                    finally_b(rt, scopes + [{}])
            return None
        return run_try

    def _stmt_Throw(self, stmt):
        value_t = self.compile_expr(stmt.value)

        def run_throw(rt, scopes):
            raise _GroovyThrow(value_t(rt, scopes))
        return run_throw

    def _stmt_MethodDef(self, stmt):
        return _const_none  # nested defs are ignored, as in the interpreter

    # -- expressions ---------------------------------------------------------

    def compile_expr(self, expr):
        """Dispatch one IR expression to its ``_expr_<Type>`` compiler."""
        method = getattr(self, "_expr_%s" % type(expr).__name__, None)
        if method is None:
            raise CompileError("cannot compile expression %s"
                               % type(expr).__name__)
        return method(expr)

    def _expr_Literal(self, expr):
        value = expr.value
        return lambda rt, scopes: value

    def _expr_GString(self, expr):
        parts = [part if isinstance(part, str) else self.compile_expr(part)
                 for part in expr.parts]

        def run_gstring(rt, scopes):
            return "".join(
                part if isinstance(part, str)
                else to_groovy_string(part(rt, scopes))
                for part in parts)
        return run_gstring

    def _expr_Name(self, expr):
        name = expr.id

        def run_name(rt, scopes):
            found, value = rt._lookup(name, scopes)
            return value if found else None
        return run_name

    def _expr_ListLit(self, expr):
        item_ts = [self.compile_expr(item) for item in expr.items]

        def run_list(rt, scopes):
            return [item_t(rt, scopes) for item_t in item_ts]
        return run_list

    def _expr_MapLit(self, expr):
        entry_ts = []
        for entry in expr.entries:
            key = entry.key
            key_t = self.compile_expr(key) if isinstance(key, ast.Node) else None
            entry_ts.append((key, key_t, self.compile_expr(entry.value)))

        def run_map(rt, scopes):
            mapping = {}
            for key, key_t, value_t in entry_ts:
                if key_t is not None:
                    key = key_t(rt, scopes)
                mapping[key] = value_t(rt, scopes)
            return mapping
        return run_map

    def _expr_RangeLit(self, expr):
        lo_t = self.compile_expr(expr.lo)
        hi_t = self.compile_expr(expr.hi)

        def run_range(rt, scopes):
            lo = rt._to_number(lo_t(rt, scopes))
            hi = rt._to_number(hi_t(rt, scopes))
            return list(range(int(lo), int(hi) + 1))
        return run_range

    def _expr_Property(self, expr):
        obj_t = self.compile_expr(expr.obj)
        name = expr.name

        def run_property(rt, scopes):
            obj = obj_t(rt, scopes)
            if obj is None:
                # safe or not: null-tolerant, matching the interpreter
                return None
            return get_property_value(obj, name)
        return run_property

    def _expr_Index(self, expr):
        obj_t = self.compile_expr(expr.obj)
        index_t = self.compile_expr(expr.index)

        def run_index(rt, scopes):
            return index_value(obj_t(rt, scopes), index_t(rt, scopes))
        return run_index

    def _expr_Closure(self, expr):
        params = expr.params
        body_b = self.compile_block(expr.body)

        def run_closure(rt, scopes):
            return CompiledClosure(params, body_b, list(scopes))
        return run_closure

    def _expr_Unary(self, expr):
        op = expr.op
        operand_t = self.compile_expr(expr.operand)
        if op == "!":
            def run_not(rt, scopes):
                return not is_groovy_truthy(operand_t(rt, scopes))
            return run_not
        if op in ("++", "--"):
            delta = 1 if op == "++" else -1
            name = expr.operand.id if isinstance(expr.operand, ast.Name) else None

            def run_incr(rt, scopes):
                value = rt._to_number(operand_t(rt, scopes)) or 0
                new = value + delta
                if name is not None:
                    rt._assign_name(name, new, scopes)
                return new
            return run_incr
        if op == "-":
            return lambda rt, scopes: -rt._to_number(operand_t(rt, scopes))
        if op == "+":
            return lambda rt, scopes: rt._to_number(operand_t(rt, scopes))
        if op == "~":
            return lambda rt, scopes: ~int(rt._to_number(operand_t(rt, scopes)))
        raise CompileError("unknown unary %r" % op)

    def _expr_Postfix(self, expr):
        delta = 1 if expr.op == "++" else -1
        operand_t = self.compile_expr(expr.operand)
        name = expr.operand.id if isinstance(expr.operand, ast.Name) else None

        def run_postfix(rt, scopes):
            value = rt._to_number(operand_t(rt, scopes)) or 0
            if name is not None:
                rt._assign_name(name, value + delta, scopes)
            return value
        return run_postfix

    def _expr_Ternary(self, expr):
        cond_t = self.compile_expr(expr.cond)
        then_t = self.compile_expr(expr.then)
        else_t = self.compile_expr(expr.orelse)

        def run_ternary(rt, scopes):
            if is_groovy_truthy(cond_t(rt, scopes)):
                return then_t(rt, scopes)
            return else_t(rt, scopes)
        return run_ternary

    def _expr_Elvis(self, expr):
        value_t = self.compile_expr(expr.value)
        fallback_t = self.compile_expr(expr.fallback)

        def run_elvis(rt, scopes):
            value = value_t(rt, scopes)
            if is_groovy_truthy(value):
                return value
            return fallback_t(rt, scopes)
        return run_elvis

    def _expr_Cast(self, expr):
        value_t = self.compile_expr(expr.value)
        target = expr.type_name
        if target in ("int", "Integer", "long", "Long", "short", "BigInteger"):
            def cast_int(rt, scopes):
                value = value_t(rt, scopes)
                return int(float(value)) if value is not None else None
            return cast_int
        if target in ("float", "double", "Float", "Double", "BigDecimal"):
            def cast_float(rt, scopes):
                value = value_t(rt, scopes)
                return float(value) if value is not None else None
            return cast_float
        if target in ("String", "GString"):
            return lambda rt, scopes: to_groovy_string(value_t(rt, scopes))
        if target in ("boolean", "Boolean"):
            return lambda rt, scopes: is_groovy_truthy(value_t(rt, scopes))
        if target in ("List", "ArrayList", "Collection"):
            def cast_list(rt, scopes):
                value = value_t(rt, scopes)
                return list(rt._iterate(value)) if value is not None else []
            return cast_list
        return value_t

    def _expr_New(self, expr):
        arg_ts = [self.compile_expr(a) for a in expr.args]
        type_name = expr.type_name

        def run_new(rt, scopes):
            args = [arg_t(rt, scopes) for arg_t in arg_ts]
            return rt._construct(type_name, args, expr)
        return run_new

    def _expr_Binary(self, expr):
        op = expr.op
        if op == "&&":
            left_t = self.compile_expr(expr.left)
            right_t = self.compile_expr(expr.right)

            def run_and(rt, scopes):
                if not is_groovy_truthy(left_t(rt, scopes)):
                    return False
                return is_groovy_truthy(right_t(rt, scopes))
            return run_and
        if op == "||":
            left_t = self.compile_expr(expr.left)
            right_t = self.compile_expr(expr.right)

            def run_or(rt, scopes):
                if is_groovy_truthy(left_t(rt, scopes)):
                    return True
                return is_groovy_truthy(right_t(rt, scopes))
            return run_or
        left_t = self.compile_expr(expr.left)
        right_t = self.compile_expr(expr.right)
        if op == "==":
            def run_eq(rt, scopes):
                return rt._equals(left_t(rt, scopes), right_t(rt, scopes))
            return run_eq
        if op == "!=":
            def run_ne(rt, scopes):
                return not rt._equals(left_t(rt, scopes), right_t(rt, scopes))
            return run_ne
        if op in ("<", "<=", ">", ">="):
            def run_cmp(rt, scopes):
                return rt._compare(op, left_t(rt, scopes), right_t(rt, scopes))
            return run_cmp
        if op == "+":
            def run_plus(rt, scopes):
                return rt._plus(left_t(rt, scopes), right_t(rt, scopes))
            return run_plus

        def run_binary(rt, scopes):
            return rt._binary(op, left_t(rt, scopes), right_t(rt, scopes),
                              expr)
        return run_binary

    def _expr_Call(self, expr):
        name = expr.name
        arg_ts = [self.compile_expr(a) for a in expr.args]
        named_ts = [(entry.key, self.compile_expr(entry.value))
                    for entry in expr.named if isinstance(entry.key, str)]
        closure_t = (self._expr_Closure(expr.closure)
                     if expr.closure is not None else None)

        def run_call(rt, scopes):
            args = [arg_t(rt, scopes) for arg_t in arg_ts]
            named = {key: value_t(rt, scopes) for key, value_t in named_ts}
            closure = closure_t(rt, scopes) if closure_t is not None else None

            method = rt._compiled.methods.get(name)
            if method is not None:
                if named and not args:
                    args = [named]
                if closure is not None:
                    args.append(closure)
                return rt._call_compiled(method, args)

            found, value = rt._lookup(name, scopes)
            if found and isinstance(value, ClosureValue):
                return rt.invoke_closure(value, args)

            return rt._platform_api(name, args, named, closure, expr)
        return run_call

    def _expr_MethodCall(self, expr):
        obj_t = self.compile_expr(expr.obj)
        name = expr.name
        spread = expr.spread
        arg_ts = [self.compile_expr(a) for a in expr.args]
        named_ts = [(entry.key, self.compile_expr(entry.value))
                    for entry in expr.named if isinstance(entry.key, str)]
        closure_t = (self._expr_Closure(expr.closure)
                     if expr.closure is not None else None)

        def run_method_call(rt, scopes):
            obj = obj_t(rt, scopes)
            if obj is None:
                return None  # safe or not: null-tolerant, as interpreted
            args = [arg_t(rt, scopes) for arg_t in arg_ts]
            named = {key: value_t(rt, scopes) for key, value_t in named_ts}
            closure = closure_t(rt, scopes) if closure_t is not None else None
            if spread:
                return [rt._invoke_on(item, name, args, named, closure, expr)
                        for item in rt._iterate(obj)]
            return rt._invoke_on(obj, name, args, named, closure, expr)
        return run_method_call


def _const_none(rt, scopes):
    return None


class CompiledExecutor(Interpreter):
    """Executes one app's *compiled* handlers.

    Construction, environment building, lookup/assignment rules, the
    platform-API surface and the built-in dispatch are all inherited from
    :class:`Interpreter`; only the code paths that would walk the AST are
    replaced by compiled-closure calls.
    """

    def __init__(self, app_instance, ctx, program, op_budget=DEFAULT_OP_BUDGET):
        super().__init__(app_instance, ctx, op_budget)
        self._compiled = program

    # -- entry points --------------------------------------------------------

    def run_handler(self, handler_name, event_handle):
        """Run one subscribed handler through its compiled closure tree
        (missing handlers log a warning, exactly like the interpreter)."""
        method = self._compiled.methods.get(handler_name)
        if method is None:
            self.ctx.log(self.app.name, "warn",
                         "handler %s not found" % handler_name)
            return None
        args = []
        if method.params:
            args = [event_handle] + [None] * (len(method.params) - 1)
        return self._call_compiled(method, args)

    def call_method(self, method, args, named=None):
        """AST-level entry used by shared machinery (``_invoke_on``)."""
        compiled = self._compiled.methods.get(method.name)
        if compiled is None:
            return super().call_method(method, args, named)
        return self._call_compiled(compiled, args)

    def _call_compiled(self, method, args):
        scope = {}
        for index, param in enumerate(method.params):
            if index < len(args):
                scope[param.name] = args[index]
            else:
                default_t = method.defaults[index]
                scope[param.name] = (default_t(self, [scope])
                                     if default_t is not None else None)
        try:
            return method.body(self, [scope])
        except _Return as ret:
            return ret.value

    def invoke_closure(self, closure, args):
        """Call a closure value; AST closures fall back to the
        interpreter, compiled ones run their thunk with a fresh scope."""
        if not isinstance(closure, CompiledClosure):
            return super().invoke_closure(closure, args)
        scope = {}
        params = closure.params
        if not params:
            scope["it"] = args[0] if args else None
        else:
            if len(args) < len(params) and len(params) == 2 and len(args) == 1:
                entry = args[0]
                if isinstance(entry, handles.StateRecord):
                    args = [entry.name, entry.value]
            for index, param in enumerate(params):
                scope[param.name] = args[index] if index < len(args) else None
        scopes = list(closure.scopes) + [scope]
        try:
            return closure.body(self, scopes)
        except _Return as ret:
            return ret.value
