"""The model-checker state vector.

A :class:`ModelState` captures everything the transition relation can read
or write: device attribute values, the location mode, each app's persistent
``state`` map, the monotone clock (§8: "We model system time as a
monotonically increasing variable"), pending scheduled callbacks, a bounded
per-device event history (for ``eventsSince``), and - in the concurrent
design - the queue of pending cyber events.

Two properties make the exploration hot path cheap:

* **Copy-on-write branching.**  :meth:`copy` shares the per-device
  attribute maps and per-app state maps between parent and child instead
  of deep-copying them; a branch that touches two devices copies two
  small dicts, not the whole home.  Mutators unshare lazily.
* **Incremental fingerprints.**  A 64-bit :meth:`fingerprint` is
  maintained through :meth:`set_attribute`/mode/schedule mutations, so
  visited-set lookups need no full re-canonicalization.  The exact
  canonical form stays available behind :meth:`canonical_key` for the
  exact visited store and for collision audits; equal canonical keys are
  guaranteed to have equal fingerprints.

Raw access to the underlying containers (the :attr:`devices` /
:attr:`app_states` properties, or the dict handed out by
:meth:`app_state`) stays supported - app code mutates its state map in
place - but such a reference *escapes* the bookkeeping.  Escaped maps
are therefore treated pessimistically: their fingerprint contribution is
recomputed on every :meth:`fingerprint` call (staleness cannot be
tracked), and :meth:`copy` gives the child its own deep copy instead of
sharing them (a pre-copy reference must never alias the clone).
"""

_MASK = (1 << 64) - 1

#: FNV-1a constants used to mix the per-component hashes into one word.
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3

_MISSING = object()


def _mix(parts):
    acc = _FNV_OFFSET
    for part in parts:
        acc ^= part & _MASK
        acc = (acc * _FNV_PRIME) & _MASK
    return acc


class ModelState:
    """Mutable model state; the checker copies it on every branch."""

    __slots__ = (
        "_devices", "_mode", "_app_states", "time", "_schedules", "_history",
        "_pending", "_cascade_commands",
        # copy-on-write bookkeeping: names whose inner maps are shared
        # with another state and must be copied before mutation
        "_shared_devices", "_shared_apps", "_history_shared",
        "_history_escaped",
        # escape bookkeeping: raw references handed out (see module doc)
        "_devices_escaped", "_escaped_apps", "_apps_escaped_all",
        # fingerprint caches
        "_dev_hash", "_dev_hash_valid", "_app_hashes", "_dirty_apps",
        "_fp_cache", "_sched_hash",
    )

    #: bounded history length per device (enough for `eventsSince` guards)
    HISTORY_LIMIT = 4

    def __init__(self, devices=None, mode="Home", app_states=None, time=0,
                 schedules=(), history=None, pending=(), cascade_commands=()):
        self._devices = devices or {}
        self._mode = mode
        self._app_states = app_states or {}
        self.time = time
        self._schedules = tuple(schedules)
        self._history = history or {}
        self._history_shared = False
        self._history_escaped = history is not None
        self._pending = tuple(pending)
        # commands sent since the last external event (concurrent design
        # needs this in-state; the sequential cascade keeps its own log)
        self._cascade_commands = tuple(cascade_commands)
        self._shared_devices = set()
        self._shared_apps = set()
        # constructor-supplied dicts are caller-owned references
        self._devices_escaped = devices is not None
        self._escaped_apps = set()
        self._apps_escaped_all = app_states is not None
        self._dev_hash = 0
        self._dev_hash_valid = False
        self._app_hashes = {}
        self._dirty_apps = set()
        self._fp_cache = None
        self._sched_hash = None

    # -- raw-container views ---------------------------------------------------

    @property
    def devices(self):
        if self._shared_devices:
            for name in self._shared_devices:
                self._devices[name] = dict(self._devices[name])
            self._shared_devices.clear()
        self._devices_escaped = True
        self._fp_cache = None
        return self._devices

    @property
    def app_states(self):
        if self._shared_apps:
            for name in self._shared_apps:
                self._app_states[name] = _copy_value(self._app_states[name])
            self._shared_apps.clear()
        self._apps_escaped_all = True
        self._fp_cache = None
        return self._app_states

    @property
    def history(self):
        """The per-device event history map (unshared on access).

        The outer dict is shared copy-on-write between parent and child
        states; handing out the raw reference forces a private copy so
        direct writes can never leak into a sibling branch.
        """
        if self._history_shared:
            self._history = dict(self._history)
            self._history_shared = False
        self._history_escaped = True
        return self._history

    @history.setter
    def history(self, value):
        self._history = value
        self._history_shared = False
        self._history_escaped = True

    @property
    def mode(self):
        return self._mode

    @mode.setter
    def mode(self, value):
        self._mode = value
        self._fp_cache = None

    @property
    def schedules(self):
        return self._schedules

    @schedules.setter
    def schedules(self, value):
        self._schedules = tuple(value)
        self._fp_cache = None
        self._sched_hash = None

    @property
    def pending(self):
        return self._pending

    @pending.setter
    def pending(self, value):
        self._pending = tuple(value)
        self._fp_cache = None

    @property
    def cascade_commands(self):
        return self._cascade_commands

    @cascade_commands.setter
    def cascade_commands(self, value):
        self._cascade_commands = tuple(value)
        self._fp_cache = None

    # -- reads ---------------------------------------------------------------

    def attribute(self, device_name, attribute):
        """Current value of a device attribute (``None`` when unknown)."""
        return self._devices.get(device_name, {}).get(attribute)

    def device_history(self, device_name):
        return self._history.get(device_name, ())

    # -- writes --------------------------------------------------------------

    def set_attribute(self, device_name, attribute, value):
        attrs = self._devices.get(device_name)
        if attrs is None:
            attrs = {}
            self._devices[device_name] = attrs
        elif device_name in self._shared_devices:
            attrs = dict(attrs)
            self._devices[device_name] = attrs
            self._shared_devices.discard(device_name)
        if self._dev_hash_valid and not self._devices_escaped:
            old = attrs.get(attribute, _MISSING)
            if old is not _MISSING:
                self._dev_hash ^= hash((device_name, attribute, old))
            self._dev_hash ^= hash((device_name, attribute, value))
        attrs[attribute] = value
        self._fp_cache = None

    def record_event(self, device_name, attribute, value):
        """Append to the bounded per-device history."""
        history = self._history
        if self._history_shared:
            history = dict(history)
            self._history = history
            self._history_shared = False
        old = history.get(device_name, ())
        entry = (attribute, value, self.time)
        history[device_name] = (old + (entry,))[-self.HISTORY_LIMIT:]

    def add_schedule(self, app_name, handler, periodic=False):
        entry = (app_name, handler, periodic)
        if entry not in self._schedules:
            self._schedules = self._schedules + (entry,)
            self._fp_cache = None
            self._sched_hash = None

    def remove_schedule(self, app_name, handler=None):
        self._schedules = tuple(
            (a, h, p) for (a, h, p) in self._schedules
            if not (a == app_name and (handler is None or h == handler)))
        self._fp_cache = None
        self._sched_hash = None

    def app_state(self, app_name):
        """The persistent ``state`` map of one app (created on demand).

        The returned dict is mutated freely by app code, so a map shared
        with a parent/child state is deep-copied here and the reference
        counts as escaped from then on (recompute-on-fingerprint,
        deep-copy-on-branch).
        """
        mapping = self._app_states.get(app_name)
        if mapping is None:
            mapping = {}
            self._app_states[app_name] = mapping
        elif app_name in self._shared_apps:
            mapping = _copy_value(mapping)
            self._app_states[app_name] = mapping
            self._shared_apps.discard(app_name)
        self._escaped_apps.add(app_name)
        self._fp_cache = None
        return mapping

    def seal(self):
        """Declare every raw reference handed out so far dropped.

        The transition relation calls this once a cascade has finished:
        the executors' ``state``/``atomicState`` views and any raw
        container references die with the cascade, so the pessimistic
        escape treatment (recompute-per-fingerprint, deep-copy-on-branch)
        can stop.  Escaped components are marked dirty so their hashes
        recompute once, lazily; afterwards the state fingerprints from
        cache and branches with copy-on-write sharing again.

        Callers must guarantee no live raw reference remains - a write
        through one after sealing could leak into shared children.
        """
        if self._devices_escaped:
            self._devices_escaped = False
            self._dev_hash_valid = False
            self._fp_cache = None
        if self._apps_escaped_all:
            # entries may have been removed through the escaped view;
            # drop every memoized hash and rebuild on the next call
            self._app_hashes.clear()
            self._dirty_apps = set(self._app_states)
            self._apps_escaped_all = False
            self._escaped_apps = set()
            self._fp_cache = None
        elif self._escaped_apps:
            self._dirty_apps |= self._escaped_apps
            self._escaped_apps = set()
            self._fp_cache = None
        self._history_escaped = False
        return self

    # -- copy / hash -----------------------------------------------------------

    def copy(self):
        """A structural-sharing copy: inner maps are shared, not duplicated.

        Both sides mark the shared maps, so whichever state mutates first
        copies just the map it touches (copy-on-write in both directions).
        Maps whose references escaped are deep-copied instead - an old
        reference must keep writing into this state only, never the clone.
        """
        clone = ModelState.__new__(ModelState)
        clone._mode = self._mode
        clone.time = self.time
        clone._schedules = self._schedules
        clone._sched_hash = self._sched_hash
        # the history map is shared COW like the device maps: both sides
        # mark it shared, whichever records an event first copies it; an
        # escaped reference (raw .history access) forces a private copy
        if self._history_escaped:
            clone._history = dict(self._history)
            clone._history_shared = False
        else:
            clone._history = self._history
            clone._history_shared = True
            self._history_shared = True
        clone._history_escaped = False
        clone._pending = self._pending
        clone._cascade_commands = self._cascade_commands

        if self._devices_escaped:
            clone._devices = {name: dict(attrs)
                              for name, attrs in self._devices.items()}
            clone._shared_devices = set()
            clone._dev_hash = 0
            clone._dev_hash_valid = False
        else:
            clone._devices = dict(self._devices)
            shared_devices = set(self._devices)
            self._shared_devices |= shared_devices
            clone._shared_devices = shared_devices
            clone._dev_hash = self._dev_hash
            clone._dev_hash_valid = self._dev_hash_valid
        clone._devices_escaped = False

        escaped = (set(self._app_states) if self._apps_escaped_all
                   else self._escaped_apps)
        if escaped:
            clone._app_states = {}
            shared_apps = set()
            for name, mapping in self._app_states.items():
                if name in escaped:
                    clone._app_states[name] = _copy_value(mapping)
                else:
                    clone._app_states[name] = mapping
                    shared_apps.add(name)
            clone._dirty_apps = set(self._dirty_apps) | set(escaped)
        else:
            # fast path: every app map is clean, share them all
            clone._app_states = dict(self._app_states)
            shared_apps = set(self._app_states)
            clone._dirty_apps = (set(self._dirty_apps)
                                 if self._dirty_apps else set())
        self._shared_apps |= shared_apps
        clone._shared_apps = set(shared_apps)
        clone._escaped_apps = set()
        clone._apps_escaped_all = False
        clone._app_hashes = dict(self._app_hashes)
        # content is identical at copy time, so the clone inherits the
        # whole-state fingerprint when this state's is trustworthy (no
        # escaped references that could mutate behind the caches)
        if (self._fp_cache is not None and not self._devices_escaped
                and not self._apps_escaped_all and not self._escaped_apps
                and not self._dirty_apps):
            clone._fp_cache = self._fp_cache
        else:
            clone._fp_cache = None
        return clone

    def fingerprint(self):
        """64-bit incremental hash of the canonical state.

        Maintained through the mutator methods; components whose
        references escaped are recomputed on every call.  Equal canonical
        keys always produce equal fingerprints (the reverse may fail with
        probability ~2^-64 per pair - the BITSTATE trade-off).

        Built on Python's ``hash()``, so values are stable within a
        process but vary across processes (string hashing is seeded);
        set ``PYTHONHASHSEED`` to reproduce a fingerprint/BITSTATE run
        bit-for-bit.
        """
        if (self._fp_cache is not None and not self._devices_escaped
                and not self._apps_escaped_all and not self._escaped_apps
                and not self._dirty_apps):
            return self._fp_cache
        if self._devices_escaped or not self._dev_hash_valid:
            dev_hash = 0
            for name, attrs in self._devices.items():
                for attribute, value in attrs.items():
                    dev_hash ^= hash((name, attribute, value))
            self._dev_hash = dev_hash
            self._dev_hash_valid = True
        if self._apps_escaped_all:
            # rebuild outright: entries removed through the escaped view
            # must not leave stale hashes behind
            self._app_hashes = {
                name: hash((name, _freeze(mapping)))
                for name, mapping in self._app_states.items()}
        else:
            for name in self._dirty_apps | self._escaped_apps:
                mapping = self._app_states.get(name)
                if mapping is None:
                    self._app_hashes.pop(name, None)
                else:
                    self._app_hashes[name] = hash((name, _freeze(mapping)))
        self._dirty_apps.clear()
        apps_hash = 0
        for value in self._app_hashes.values():
            apps_hash ^= value
        if self._sched_hash is None:
            self._sched_hash = hash(tuple(sorted(self._schedules)))
        mixed = _mix((
            self._dev_hash,
            hash(self._mode),
            apps_hash,
            self._sched_hash,
            hash(self._pending),
            hash(self._cascade_commands),
        ))
        self._fp_cache = mixed
        return mixed

    def physical_key(self):
        """Hashable key of the *physical* projection: device attributes + mode.

        This is the part of the state the safe-physical-state invariants
        read, so it keys the compiled property evaluators' verdict memo.
        Shares the incremental device hash with :meth:`fingerprint` (same
        ~2^-64 collision trade-off on the device component).
        """
        if self._devices_escaped or not self._dev_hash_valid:
            dev_hash = 0
            for name, attrs in self._devices.items():
                for attribute, value in attrs.items():
                    dev_hash ^= hash((name, attribute, value))
            self._dev_hash = dev_hash
            self._dev_hash_valid = True
        return (self._dev_hash, self._mode)

    def canonical_key(self):
        """Canonical hashable form for exact visited-state deduplication.

        The clock is deliberately excluded: two states differing only in the
        timestamp behave identically (time only orders history entries), and
        including it would make every state unique and defeat deduplication.
        """
        return (
            tuple(sorted((name, tuple(sorted(attrs.items())))
                         for name, attrs in self._devices.items())),
            self._mode,
            tuple(sorted((name, _freeze(mapping))
                         for name, mapping in self._app_states.items())),
            tuple(sorted(self._schedules)),
            self._pending,
            self._cascade_commands,
        )

    #: backwards-compatible alias (pre-engine callers used ``state.key()``)
    key = canonical_key

    def __repr__(self):
        return "ModelState(mode=%r, time=%d, devices=%d)" % (
            self._mode, self.time, len(self._devices))


def _copy_value(value):
    if isinstance(value, dict):
        return {k: _copy_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_copy_value(v) for v in value]
    return value


def _freeze(value):
    """Recursively convert a state value into a hashable form."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value
