"""The model-checker state vector.

A :class:`ModelState` captures everything the transition relation can read
or write: device attribute values, the location mode, each app's persistent
``state`` map, the monotone clock (§8: "We model system time as a
monotonically increasing variable"), pending scheduled callbacks, a bounded
per-device event history (for ``eventsSince``), and - in the concurrent
design - the queue of pending cyber events.

States are plain mutable objects copied on branch; :meth:`key` produces the
canonical hashable form used by the visited stores (exact set or BITSTATE
bitfield).
"""


class ModelState:
    """Mutable model state; the checker copies it on every branch."""

    __slots__ = ("devices", "mode", "app_states", "time", "schedules",
                 "history", "pending", "cascade_commands")

    #: bounded history length per device (enough for `eventsSince` guards)
    HISTORY_LIMIT = 4

    def __init__(self, devices=None, mode="Home", app_states=None, time=0,
                 schedules=(), history=None, pending=(), cascade_commands=()):
        self.devices = devices or {}
        self.mode = mode
        self.app_states = app_states or {}
        self.time = time
        self.schedules = tuple(schedules)
        self.history = history or {}
        self.pending = tuple(pending)
        # commands sent since the last external event (concurrent design
        # needs this in-state; the sequential cascade keeps its own log)
        self.cascade_commands = tuple(cascade_commands)

    # -- reads ---------------------------------------------------------------

    def attribute(self, device_name, attribute):
        """Current value of a device attribute (``None`` when unknown)."""
        return self.devices.get(device_name, {}).get(attribute)

    def device_history(self, device_name):
        return self.history.get(device_name, ())

    # -- writes --------------------------------------------------------------

    def set_attribute(self, device_name, attribute, value):
        self.devices.setdefault(device_name, {})[attribute] = value

    def record_event(self, device_name, attribute, value):
        """Append to the bounded per-device history."""
        old = self.history.get(device_name, ())
        entry = (attribute, value, self.time)
        self.history[device_name] = (old + (entry,))[-self.HISTORY_LIMIT:]

    def add_schedule(self, app_name, handler, periodic=False):
        entry = (app_name, handler, periodic)
        if entry not in self.schedules:
            self.schedules = self.schedules + (entry,)

    def remove_schedule(self, app_name, handler=None):
        self.schedules = tuple(
            (a, h, p) for (a, h, p) in self.schedules
            if not (a == app_name and (handler is None or h == handler)))

    def app_state(self, app_name):
        """The persistent ``state`` map of one app (created on demand)."""
        return self.app_states.setdefault(app_name, {})

    # -- copy / hash -----------------------------------------------------------

    def copy(self):
        """A deep-enough copy: nested dicts are copied, values are immutable."""
        return ModelState(
            devices={name: dict(attrs) for name, attrs in self.devices.items()},
            mode=self.mode,
            app_states={name: _copy_value(mapping)
                        for name, mapping in self.app_states.items()},
            time=self.time,
            schedules=self.schedules,
            history=dict(self.history),
            pending=self.pending,
            cascade_commands=self.cascade_commands,
        )

    def key(self):
        """Canonical hashable form for visited-state deduplication.

        The clock is deliberately excluded: two states differing only in the
        timestamp behave identically (time only orders history entries), and
        including it would make every state unique and defeat deduplication.
        """
        return (
            tuple(sorted((name, tuple(sorted(attrs.items())))
                         for name, attrs in self.devices.items())),
            self.mode,
            tuple(sorted((name, _freeze(mapping))
                         for name, mapping in self.app_states.items())),
            tuple(sorted(self.schedules)),
            self.pending,
            self.cascade_commands,
        )

    def __repr__(self):
        return "ModelState(mode=%r, time=%d, devices=%d)" % (
            self.mode, self.time, len(self.devices))


def _copy_value(value):
    if isinstance(value, dict):
        return {k: _copy_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_copy_value(v) for v in value]
    return value


def _freeze(value):
    """Recursively convert a state value into a hashable form."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value
