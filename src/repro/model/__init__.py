"""Model Generator and execution model of an IoT system (§8).

This package turns *apps + configuration + devices* into an executable
transition system:

* :mod:`repro.model.state` - the model-checker state vector;
* :mod:`repro.model.events` - cyber/physical events and external choices;
* :mod:`repro.model.handles` - runtime objects the interpreter exposes to
  app code (device handles, location, event objects, ``state``, ...);
* :mod:`repro.model.interpreter` - the IR interpreter (executes handlers);
* :mod:`repro.model.cascade` - Algorithm 1's ``sensor_state_update`` /
  ``dispatch_event`` / ``actuator_state_update`` loop, with failure
  injection and per-cascade command-conflict detection;
* :mod:`repro.model.system` - the bound :class:`IoTSystem` (sequential and
  concurrent transition relations);
* :mod:`repro.model.generator` - builds an :class:`IoTSystem` from a
  :class:`~repro.config.schema.SystemConfiguration`.
"""

from repro.model.events import Event, ExternalEvent
from repro.model.generator import ModelGenerator, build_system
from repro.model.state import ModelState
from repro.model.system import AppInstance, IoTSystem

__all__ = [
    "Event",
    "ExternalEvent",
    "ModelGenerator",
    "build_system",
    "ModelState",
    "AppInstance",
    "IoTSystem",
]
