"""Algorithm 1: the main event loop of the modeled IoT system.

A :class:`Cascade` executes *one* external event and everything it causes:
``sensor_state_update`` -> ``dispatch_event`` to subscribed apps ->
``actuator_state_update`` (which may generate new cyber events), until the
event queue drains.  It is also the *context* object the interpreter and the
runtime handles call into, so every read of device state and every side
effect of app code flows through here.

Failure injection follows §8: "when generating a sensor event we enumerate
two scenarios: (i) the sensor is available/online and (ii) the sensor is
unavailable/offline.  Similarly, whenever receiving a command from a smart
app, an actuator may be either online or offline."
"""

from repro.checker.violations import TraceStep
from repro.model.compiler import CompiledExecutor
from repro.model.events import (APP, DEVICE, FAKE, LOCATION, TIMER, Event,
                                FailureScenario, NO_FAILURE)
from repro.model.handles import DeviceHandle, EventHandle
from repro.model.interpreter import ExecutionError, Interpreter

__all__ = ["Cascade", "FailureScenario", "NO_FAILURE", "TIME_QUANTUM_MS",
           "MAX_INTERNAL_EVENTS"]

#: milliseconds the model clock advances per external event
TIME_QUANTUM_MS = 60000

#: bound on internal events per cascade (guards against app event loops)
MAX_INTERNAL_EVENTS = 64

#: sentinel distinguishing "no stale entry" from a stale value of ``None``
_NO_STALE = object()


class Cascade:
    """Executes one external event against a mutable model state."""

    def __init__(self, system, state, monitor, scenario=NO_FAILURE,
                 defer_dispatch=False, use_compiled=None):
        self.system = system
        self.state = state
        self.monitor = monitor
        self.scenario = scenario
        self.use_compiled = (getattr(system, "use_compiled", True)
                             if use_compiled is None else use_compiled)
        self.steps = []
        #: when True (concurrent design) generated events are parked in
        #: ``state.pending`` instead of being dispatched run-to-completion
        self.defer_dispatch = defer_dispatch
        self._queue = []
        self._dispatched = 0
        #: (device, attribute) -> pre-event value, set by the stale-reads
        #: scenario; app reads through :meth:`get_attribute` see these
        self._stale_reads = None

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------

    def run_external(self, ext):
        """Apply one external event; returns the violations found."""
        self.state.time += TIME_QUANTUM_MS
        suffix = self.scenario.label()
        self.steps.append(TraceStep(
            "external", ext.describe() + suffix if suffix
            else ext.describe()))
        if ext.kind == "sensor":
            kind = self.scenario.kind
            if kind == FailureScenario.SENSOR_DROP:
                # The physical world changed but the report was lost: ground
                # truth updates silently, no app is notified.
                self.state.set_attribute(ext.device, ext.attribute, ext.value)
                self._step("failure", "%s offline: event %s=%s not reported"
                           % (ext.device, ext.attribute, ext.value))
            elif kind == FailureScenario.EVENT_DROP:
                # lossy profile: same silent ground-truth update, but the
                # loss is in transit rather than at the sensor
                self.state.set_attribute(ext.device, ext.attribute, ext.value)
                self._step("failure", "report lost: event %s=%s from %s not "
                           "delivered" % (ext.attribute, ext.value, ext.device))
            elif (kind == FailureScenario.DEVICE_DEATH
                  and self.scenario.device == ext.device):
                self.state.set_attribute(ext.device, ext.attribute, ext.value)
                self._step("failure", "%s dead: event %s=%s not reported"
                           % (ext.device, ext.attribute, ext.value))
            elif kind == FailureScenario.DUPLICATE:
                changed = (self.state.attribute(ext.device, ext.attribute)
                           != ext.value)
                self.sensor_state_update(ext.device, ext.attribute, ext.value)
                if changed:
                    self._step("failure", "%s duplicated: event %s=%s "
                               "delivered twice"
                               % (ext.device, ext.attribute, ext.value))
                    self._enqueue(Event(DEVICE, device=ext.device,
                                        attribute=ext.attribute,
                                        value=ext.value))
            elif kind == FailureScenario.STALE_READ:
                stale = self.get_attribute(ext.device, ext.attribute)
                self._step("failure", "stale reads: %s.%s cached as %s for "
                           "this cascade" % (ext.device, ext.attribute, stale))
                self.sensor_state_update(ext.device, ext.attribute, ext.value)
                self._stale_reads = {(ext.device, ext.attribute): stale}
            else:
                self.sensor_state_update(ext.device, ext.attribute, ext.value)
        elif ext.kind == "touch":
            self._enqueue(Event(APP, app=ext.app))
        elif ext.kind == "mode":
            # the user sets the location mode from the companion app
            if ext.value != self.state.mode:
                self.state.mode = ext.value
                self._step("mode", "location.mode = %s" % ext.value)
                self._enqueue(Event(LOCATION, attribute="mode",
                                    value=ext.value))
        elif ext.kind == "timer":
            self._fire_timer(ext.app, ext.handler)
        elif ext.kind == "environment":
            self._enqueue(Event(LOCATION, attribute=ext.attribute,
                                value=ext.attribute))
        if not self.defer_dispatch:
            self._drain()
            return self.monitor.finish(self.state)
        return self.monitor.violations

    def dispatch_one_pending(self, index):
        """Concurrent design: dispatch the ``index``-th pending event."""
        pending = list(self.state.pending)
        event = pending.pop(index)
        self.state.pending = tuple(pending)
        self._replay_command_log()
        self.dispatch_event(event)
        if not self.state.pending:
            return self.monitor.finish(self.state)
        return self.monitor.violations

    def _replay_command_log(self):
        """Reload this cascade's command history (stored in-state) so that
        conflict detection spans interleaved dispatches."""
        for device_name, command, payload, app_name in self.state.cascade_commands:
            instance = self.system.devices.get(device_name)
            effect = instance.command(command) if instance else None
            self.monitor._commands.append(
                (device_name, command, payload, app_name, effect))

    # ------------------------------------------------------------------
    # Algorithm 1 primitives
    # ------------------------------------------------------------------

    def sensor_state_update(self, device_name, attribute, value):
        """Lines 8-12: update state, enqueue, notify subscribers."""
        if self.state.attribute(device_name, attribute) == value:
            return
        self.state.set_attribute(device_name, attribute, value)
        self.state.record_event(device_name, attribute, value)
        self.steps.append(TraceStep(
            "state", "%s.%s = %s" % (device_name, attribute, value)))
        self._enqueue(Event(DEVICE, device=device_name, attribute=attribute,
                            value=value))

    def actuator_command(self, device_name, command, args, app_name):
        """Lines 14-21 (``actuator_state_update``) plus the §8 checks."""
        instance = self.system.devices.get(device_name)
        effect = instance.command(command) if instance is not None else None
        payload = tuple(_freeze_arg(a) for a in args)
        self._step("command", "%s.%s(%s)" % (
            device_name, command, ", ".join(str(a) for a in payload)),
            app=app_name)
        self.monitor.on_command(device_name, command, payload, app_name, effect)
        self.state.cascade_commands = self.state.cascade_commands + (
            (device_name, command, payload, app_name),)
        if effect is None:
            self._step("log", "unknown command %s on %s" % (command, device_name))
            return
        if self.scenario.drops_command(device_name):
            if self.scenario.kind == FailureScenario.DEVICE_DEATH:
                self.monitor.on_command_dropped(device_name, command, app_name,
                                                "device dead")
                self._step("failure", "%s dead: command %s dropped"
                           % (device_name, command))
            else:
                self.monitor.on_command_dropped(device_name, command, app_name,
                                                "actuator offline")
                self._step("failure", "%s offline: command %s dropped"
                           % (device_name, command))
            return
        value = effect.value
        if effect.takes_arg:
            value = payload[0] if payload else None
        value = _coerce_attribute_value(instance, effect.attribute, value)
        if self.state.attribute(device_name, effect.attribute) == value:
            return  # line 17: no state change, no event
        self.state.set_attribute(device_name, effect.attribute, value)
        self.state.record_event(device_name, effect.attribute, value)
        self._step("state", "%s.%s = %s" % (device_name, effect.attribute, value))
        self._enqueue(Event(DEVICE, device=device_name,
                            attribute=effect.attribute, value=value))

    def dispatch_event(self, event):
        """Line 5: dispatch one pending event to its subscribers."""
        self._dispatched += 1
        if self._dispatched > MAX_INTERNAL_EVENTS:
            self._step("log", "internal event budget exhausted; cascade cut")
            return
        self.steps.append(TraceStep("notify", event.describe()))
        for app_instance, handler, value_filter in self.system.subscribers_for(event):
            if value_filter is not None and str(event.value) != str(value_filter):
                continue
            self._run_handler(app_instance, handler, event)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _enqueue(self, event):
        if self.defer_dispatch:
            self.state.pending = self.state.pending + (event,)
        else:
            self._queue.append(event)

    def _drain(self):
        # the delayed profile delivers cascade events newest-first (LIFO),
        # modeling reordered/deferred delivery; clean delivery is FIFO
        lifo = self.scenario.kind == FailureScenario.REORDER
        while self._queue:
            event = self._queue.pop() if lifo else self._queue.pop(0)
            self.dispatch_event(event)

    def _fire_timer(self, app_name, handler):
        app_instance = self.system.app(app_name)
        if app_instance is None:
            return
        for scheduled_app, scheduled_handler, periodic in self.state.schedules:
            if scheduled_app == app_name and scheduled_handler == handler:
                if not periodic:
                    self.state.remove_schedule(app_name, handler)
                break
        event = Event(TIMER, app=app_name, attribute="time", value="fired")
        self._run_handler(app_instance, handler, event)

    def _run_handler(self, app_instance, handler, event):
        self._step("handler", "%s.%s(%s)" % (
            app_instance.name, handler, event.describe()), app=app_instance.name)
        device_handle = None
        if event.device is not None:
            instance = self.system.devices.get(event.device)
            if instance is not None:
                device_handle = DeviceHandle(instance, self, app_instance.name)
        event_handle = EventHandle(event, self, device_handle)
        interp = self._executor(app_instance)
        try:
            interp.run_handler(handler, event_handle)
        except ExecutionError as exc:
            self._step("log", "execution error in %s.%s: %s"
                       % (app_instance.name, handler, exc.message))

    def _executor(self, app_instance):
        """The execution back-end for one handler run: the system's
        installed executor factory (the codegen tier), else compiled
        closures when the system allows it and the app compiled, else
        the tree interpreter (``--no-compile`` path and per-app
        fallback)."""
        factory = getattr(self.system, "executor_factory", None)
        if factory is not None:
            executor = factory(app_instance, self)
            if executor is not None:
                return executor
        if self.use_compiled:
            program = app_instance.compiled_program()
            if program is not None:
                return CompiledExecutor(app_instance, self, program)
        return Interpreter(app_instance, self)

    def _step(self, kind, text, app=None, line=None):
        self.steps.append(TraceStep(kind, text, app=app, line=line))

    # ------------------------------------------------------------------
    # context protocol (used by the interpreter and the handles)
    # ------------------------------------------------------------------

    def get_attribute(self, device_name, attribute):
        if self._stale_reads is not None:
            stale = self._stale_reads.get((device_name, attribute),
                                          _NO_STALE)
            if stale is not _NO_STALE:
                return stale
        value = self.state.attribute(device_name, attribute)
        if value is None:
            instance = self.system.devices.get(device_name)
            if instance is not None:
                spec = instance.spec.attributes.get(attribute)
                if spec is not None:
                    return spec.default
        return value

    def get_history(self, device_name):
        return self.state.device_history(device_name)

    def get_mode(self):
        return self.state.mode

    def modes(self):
        return self.system.modes

    def now_millis(self):
        return self.state.time

    def app_state(self, app_name):
        return self.state.app_state(app_name)

    def log(self, app_name, level, message):
        self._step("log", "[%s] %s: %s" % (level, app_name, message))

    def set_location_mode(self, mode, app_name):
        if mode == self.state.mode:
            return
        if self.system.modes and mode not in self.system.modes:
            self._step("log", "unknown location mode %r requested by %s"
                       % (mode, app_name))
            return
        self.state.mode = mode
        self.monitor.on_actor(app_name)
        self._step("mode", "location.mode = %s" % mode, app=app_name)
        self._enqueue(Event(LOCATION, attribute="mode", value=mode))

    def send_sms(self, app_name, recipient, message, line=None):
        self._step("message", "%s sends SMS to %s: %r"
                   % (app_name, recipient, message), app=app_name, line=line)
        self.monitor.on_sms(app_name, recipient, message)

    def send_push(self, app_name, message, line=None):
        self._step("message", "%s sends push: %r" % (app_name, message),
                   app=app_name, line=line)
        self.monitor.on_push(app_name, message)

    def http_request(self, app_name, api, url, line=None):
        self._step("message", "%s calls %s(%r)" % (app_name, api, url),
                   app=app_name, line=line)
        self.monitor.on_http(app_name, api, url)

    def security_sensitive_command(self, app_name, command, line=None):
        self._step("message", "%s executes %s" % (app_name, command),
                   app=app_name, line=line)
        self.monitor.on_security_command(app_name, command)

    def fake_event(self, app_name, attribute, value, line=None):
        self._step("message", "%s raises fake event %s=%s"
                   % (app_name, attribute, value), app=app_name, line=line)
        self.monitor.on_fake_event(app_name, attribute, value)
        self._enqueue(Event(FAKE, attribute=attribute, value=value,
                            app=app_name))

    def schedule(self, app_name, handler, periodic=False):
        self.state.add_schedule(app_name, handler, periodic=periodic)
        self._step("log", "%s scheduled %s%s"
                   % (app_name, handler, " (periodic)" if periodic else ""))

    def unschedule(self, app_name, handler=None):
        self.state.remove_schedule(app_name, handler)

    def actuator_state_update(self, device_name, command, args, app_name):
        """Alias matching the paper's terminology."""
        self.actuator_command(device_name, command, args, app_name)


def _freeze_arg(value):
    if isinstance(value, list):
        return tuple(_freeze_arg(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze_arg(v)) for k, v in value.items()))
    return value


def _coerce_attribute_value(instance, attribute, value):
    """Snap numeric command payloads onto the attribute's model domain."""
    spec = instance.spec.attributes.get(attribute)
    if spec is None or spec.kind != "numeric" or value is None:
        return value
    try:
        numeric = float(value)
    except (TypeError, ValueError):
        return value
    return min(spec.values, key=lambda candidate: abs(candidate - numeric))
