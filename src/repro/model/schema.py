"""Per-system packed state schemas (FastContext-style precompiled layout).

A :class:`StateSchema` is compiled once per
:class:`~repro.model.system.IoTSystem`: the device x attribute grid is
flattened into a fixed slot order and the installed apps into a fixed app
order, so a :class:`~repro.model.state.ModelState` snapshots into a compact
*packed* tuple by straight slot lookups - no per-state sorting, no
re-walking dict-of-dicts.  The packed form is canonical:

    pack(a) == pack(b)  <=>  a.canonical_key() == b.canonical_key()

for any two states over the schema's system, which is what lets the
visited stores key on it directly (the collapse store interns its
component blocks, the exact store uses it as a cheaper canonical key).

States are allowed to wander off-schema - a test may hand-build a state
with devices the system never declared, or an app may grow an attribute
the spec does not list.  Those components land in sorted *overflow*
sections, so exactness is preserved at the price of the old sorting walk
for just the off-schema part.

The packed layout is a plain tuple

    (device_blocks, unknown_devices, mode, app_values, app_overflow,
     schedules, pending, cascade_commands)

where ``device_blocks[i]`` is the i-th schema device's self-contained
``(value_vector, extra_attributes)`` block (:data:`ABSENT`-padded vector,
``()`` extras in the common all-on-schema case, or :data:`ABSENT` itself
when the state has no entry for the device at all) and ``app_values[i]``
the frozen state map of the i-th schema app.  Each device block is
self-contained so stores may intern it as one arena unit.  :meth:`unpack`
inverts the mapping up to canonical equality (frozen app maps stay
frozen; ``canonical_key`` freezes idempotently, so equality is
preserved).
"""


# the one frozen form shared with fingerprint()/canonical_key(): the
# collapse store's exactness contract depends on pack() freezing app
# state maps exactly the way the state module does
from repro.model.state import _freeze


class _Absent:
    """Singleton marking "no value in this slot" (distinct from None,
    which is a legal attribute value)."""

    __slots__ = ()

    def __repr__(self):
        return "<absent>"

    def __reduce__(self):
        # ABSENT is compared by identity everywhere (unpack, deltas), so
        # crossing a pickle boundary must yield the module singleton, not
        # a fresh instance
        return (_restore_absent, ())


#: slot filler for attributes/devices/apps missing from a state
ABSENT = _Absent()


def _restore_absent():
    return ABSENT


#: how many anchor devices :meth:`StateSchema.projection_key` aims for:
#: every externally-quiet device is always an anchor, and the ranking is
#: extended with the lowest-fanout sensors until this many are anchored
#: (or the system runs out of devices)
ANCHOR_TARGET = 5


class StateSchema:
    """The packed-state layout of one :class:`IoTSystem`."""

    __slots__ = ("device_layout", "app_names", "_app_index", "slot_count",
                 "component_count", "_slot_index", "anchor_layout")

    def __init__(self, system):
        layout = []
        for name in sorted(system.devices):
            attrs = tuple(sorted(system.devices[name].spec.attributes))
            layout.append((name, attrs, frozenset(attrs)))
        #: tuple of (device_name, attribute_tuple, attribute_set)
        self.device_layout = tuple(layout)
        #: installed apps in canonical (sorted) order
        self.app_names = tuple(sorted(app.name for app in system.apps))
        self._app_index = frozenset(self.app_names)
        #: total device-attribute slots across the grid
        self.slot_count = sum(len(attrs) for _, attrs, _ in layout)
        #: components of a packed id vector: one per device, one per app,
        #: plus device-overflow, mode, app-overflow, schedules, pending
        #: and cascade-commands
        self.component_count = len(layout) + len(self.app_names) + 6
        self._slot_index = None
        self.anchor_layout = self._pick_anchors(system)

    def _pick_anchors(self, system):
        """The *stable* device subset :meth:`projection_key` projects on.

        A device's volatility under exploration is, to first order, its
        external-event fanout: the number of distinct sensor events the
        environment can inject on it (a construction-time quantity).
        Actuators and unsubscribed sensors have fanout zero - their
        attributes only move when an app commands them - so successor
        chains rarely leave their projection bucket.  Every fanout-zero
        device is anchored, and the ranking is extended with the
        quietest sensors until :data:`ANCHOR_TARGET` devices are
        anchored, which buys the bucket entropy that shard balance
        needs.
        """
        fanout = {name: 0 for name in system.devices}
        for device, attribute in system._interesting_device_attributes():
            spec = system.devices[device].spec.sensor_attributes.get(
                attribute)
            fanout[device] += len(spec.values) if spec is not None else 0
        ranked = sorted(self.device_layout,
                        key=lambda entry: (fanout[entry[0]], entry[0]))
        target = min(len(ranked), ANCHOR_TARGET)
        anchors = [entry for entry in ranked
                   if fanout[entry[0]] == 0]
        for entry in ranked:
            if len(anchors) >= target:
                break
            if fanout[entry[0]]:
                anchors.append(entry)
        return tuple(anchors)

    def slot_index(self, device_name, attribute):
        """Resolve ``(device, attribute)`` to its packed position.

        Returns ``(device_position, attribute_position)`` into the
        packed tuple's device-block section - ``packed[0][d][0][a]`` is
        the slot's value - or ``None`` for off-schema pairs.  The
        codegen tier resolves device slots against this map at
        generation time so packed-state enabledness checks skip the
        dict-of-dicts walk."""
        index = self._slot_index
        if index is None:
            index = {}
            for position, (name, attrs, _) in enumerate(self.device_layout):
                for offset, attr in enumerate(attrs):
                    index[(name, attr)] = (position, offset)
            self._slot_index = index
        return index.get((device_name, attribute))

    # ------------------------------------------------------------------
    # packing
    # ------------------------------------------------------------------

    def pack(self, state):
        """The canonical packed tuple of one state (hashable).

        Reads the state's containers without marking them escaped (the
        schema lives in the same package and the walk never leaks a
        reference), so packing a state keeps its copy-on-write sharing
        intact.
        """
        devices = state._devices
        vectors, dev_overflow = self._pack_devices(devices)
        apps = state._app_states
        values, app_overflow = self._pack_apps(apps)
        return (
            vectors,
            dev_overflow,
            state._mode,
            values,
            app_overflow,
            tuple(sorted(state._schedules)),
            state._pending,
            state._cascade_commands,
        )

    def device_block(self, layout_entry, amap):
        """One device's self-contained ``(vector, extras)`` block."""
        _name, attrs, attr_set = layout_entry
        vector = tuple(amap.get(attr, ABSENT) for attr in attrs)
        if len(attrs) - vector.count(ABSENT) != len(amap):
            # attributes outside the schema grid: exact, sorted
            extras = tuple(sorted(
                (k, v) for k, v in amap.items() if k not in attr_set))
        else:
            extras = ()
        return (vector, extras)

    def unknown_devices(self, devices):
        """Sorted overflow block for devices the schema never declared."""
        known = {name for name, _, _ in self.device_layout}
        return tuple(sorted(
            (name, tuple(sorted(amap.items())))
            for name, amap in devices.items() if name not in known))

    def _pack_devices(self, devices):
        blocks = []
        off_schema = len(devices)
        for entry in self.device_layout:
            amap = devices.get(entry[0])
            if amap is None:
                blocks.append(ABSENT)
                continue
            off_schema -= 1
            blocks.append(self.device_block(entry, amap))
        overflow = self.unknown_devices(devices) if off_schema else ()
        return tuple(blocks), overflow

    @staticmethod
    def app_block(mapping):
        """One app's frozen state map (the canonical app block)."""
        return _freeze(mapping)

    def _pack_apps(self, apps):
        values = []
        off_schema = len(apps)
        for name in self.app_names:
            mapping = apps.get(name)
            if mapping is None:
                values.append(ABSENT)
            else:
                off_schema -= 1
                values.append(_freeze(mapping))
        overflow = ()
        if off_schema:
            overflow = tuple(sorted(
                (name, _freeze(mapping)) for name, mapping in apps.items()
                if name not in self._app_index))
        return tuple(values), overflow

    # ------------------------------------------------------------------
    # unpacking
    # ------------------------------------------------------------------

    def unpack(self, packed, time=0):
        """A :class:`ModelState` canonically equal to the packed one.

        App state maps are restored in their *frozen* form
        (``canonical_key`` freezes idempotently, so equality holds); the
        clock defaults to 0 because the canonical form excludes it.
        """
        from repro.model.state import ModelState

        (blocks, unknown_devices, mode, values, app_overflow,
         schedules, pending, cascade_commands) = packed
        state = ModelState(mode=mode, time=time, schedules=schedules,
                           pending=pending,
                           cascade_commands=cascade_commands)
        for (name, attrs, _), block in zip(self.device_layout, blocks):
            if block is ABSENT:
                continue
            vector, extras = block
            # an all-ABSENT vector with no extras is a present-but-empty
            # device map: the loops add nothing, but the entry must exist
            state._devices.setdefault(name, {})
            for attr, value in zip(attrs, vector):
                if value is not ABSENT:
                    state.set_attribute(name, attr, value)
            for attr, value in extras:
                state.set_attribute(name, attr, value)
        for name, items in unknown_devices:
            state._devices.setdefault(name, {})
            for attr, value in items:
                state.set_attribute(name, attr, value)
        for name, frozen in zip(self.app_names, values):
            if frozen is not ABSENT:
                state._app_states[name] = frozen
                state._dirty_apps.add(name)
        for name, frozen in app_overflow:
            state._app_states[name] = frozen
            state._dirty_apps.add(name)
        return state

    # ------------------------------------------------------------------
    # locality projection (shard ownership)
    # ------------------------------------------------------------------

    def projection_key(self, state):
        """The stable scheduler/device projection of one state.

        Returns ``(mode, sorted schedules, anchor device blocks)`` -
        the slice of the packed grid that moves on only a minority of
        transitions (see :meth:`_pick_anchors`; the pending queue is
        deliberately excluded because it churns on every concurrent
        dispatch).  The locality partitioner owns states by a
        *deterministic* hash of this key's ``repr`` so the assignment
        is identical across shard processes and runs regardless of the
        interpreter hash seed.
        """
        devices = state._devices
        blocks = []
        for entry in self.anchor_layout:
            amap = devices.get(entry[0])
            blocks.append(ABSENT if amap is None
                          else self.device_block(entry, amap))
        return (state._mode, tuple(sorted(state._schedules)),
                tuple(blocks))

    # ------------------------------------------------------------------
    # deltas (sharded handoff encoding)
    # ------------------------------------------------------------------

    #: packed components diffed per-position (the two variable-width
    #: grids); every other component is replaced wholesale when it
    #: changes
    _POSITIONAL = frozenset((0, 3))

    def delta(self, base, packed):
        """The minimal edit list turning ``base`` into ``packed``.

        Both arguments are packed tuples from :meth:`pack` over this
        schema.  The result is a canonical (deterministically ordered,
        minimal) tuple of ``(component, position, value)`` entries:
        ``position`` indexes into the device-block grid (component 0) or
        the app-value grid (component 3), and is ``None`` for the
        wholesale components.  Round trips exactly::

            apply_delta(base, delta(base, packed)) == packed
            delta(base, apply_delta(base, d)) == d

        (the second for any ``d`` produced by :meth:`delta` against the
        same base).  Sharded handoffs ship these edits against the
        initial state's packed form instead of pickling whole states.
        """
        entries = []
        for component in range(8):
            before, after = base[component], packed[component]
            if before == after:
                continue
            if component in self._POSITIONAL and len(before) == len(after):
                for position, value in enumerate(after):
                    if before[position] != value:
                        entries.append((component, position, value))
            else:
                entries.append((component, None, after))
        return tuple(entries)

    def apply_delta(self, base, delta):
        """Invert :meth:`delta`: rebuild the edited packed tuple."""
        parts = list(base)
        touched = {}
        for component, position, value in delta:
            if position is None:
                parts[component] = value
            else:
                block = touched.get(component)
                if block is None:
                    block = touched[component] = list(parts[component])
                block[position] = value
        for component, block in touched.items():
            parts[component] = tuple(block)
        return tuple(parts)

    def __repr__(self):
        return "StateSchema(devices=%d, slots=%d, apps=%d)" % (
            len(self.device_layout), self.slot_count, len(self.app_names))
