"""Runtime objects exposed to smart-app code by the interpreter.

These model the "predefined objects or variables (e.g. ``location``) and
APIs ... not defined in vanilla Groovy" whose definitions the paper adds
manually (§6).  Each handle is a thin view over the cascade context (which
owns the mutable :class:`~repro.model.state.ModelState`): reading a property
reads model state, invoking a command goes through
``actuator_state_update``.

Handles implement two uniform hooks used by the interpreter:

* ``get_property(name)`` -> ``(handled, value)``
* ``invoke(name, args, named)`` -> ``(handled, result)``
"""

from repro.translator.builtins import to_groovy_string

_UNHANDLED = (False, None)


class DateValue:
    """A ``java.util.Date`` stand-in over the model clock (milliseconds)."""

    __slots__ = ("millis",)

    def __init__(self, millis):
        self.millis = int(millis)

    def get_property(self, name):
        if name == "time":
            return True, self.millis
        return _UNHANDLED

    def invoke(self, name, args, named):
        if name == "getTime":
            return True, self.millis
        if name in ("after", "compareTo"):
            other = args[0].millis if isinstance(args[0], DateValue) else args[0]
            if name == "after":
                return True, self.millis > other
            return True, (self.millis > other) - (self.millis < other)
        if name == "before":
            other = args[0].millis if isinstance(args[0], DateValue) else args[0]
            return True, self.millis < other
        if name == "toString":
            return True, "Date(%d)" % self.millis
        return _UNHANDLED

    def __eq__(self, other):
        return isinstance(other, DateValue) and other.millis == self.millis

    def __lt__(self, other):
        return self.millis < (other.millis if isinstance(other, DateValue) else other)

    def __gt__(self, other):
        return self.millis > (other.millis if isinstance(other, DateValue) else other)

    def __hash__(self):
        return hash(("DateValue", self.millis))

    def __repr__(self):
        return "DateValue(%d)" % self.millis


class StateRecord:
    """A device ``currentState``/event record with ``value`` and ``date``."""

    __slots__ = ("name", "value", "date")

    def __init__(self, name, value, date):
        self.name = name
        self.value = value
        self.date = date

    def get_property(self, name):
        if name == "value":
            return True, self.value
        if name in ("name", "attribute"):
            return True, self.name
        if name == "date":
            return True, self.date
        if name in ("doubleValue", "floatValue", "numericValue", "numberValue"):
            return True, float(self.value)
        if name in ("integerValue", "longValue"):
            return True, int(float(self.value))
        return _UNHANDLED

    def invoke(self, name, args, named):
        handled, value = self.get_property(name)
        if handled:
            return True, value
        return _UNHANDLED

    def __repr__(self):
        return "StateRecord(%s=%r)" % (self.name, self.value)


def _stringify(value):
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return to_groovy_string(value)
    return value


class DeviceHandle:
    """An app's view of one configured device."""

    __slots__ = ("instance", "ctx", "app_name")

    def __init__(self, instance, ctx, app_name):
        self.instance = instance
        self.ctx = ctx
        self.app_name = app_name

    @property
    def name(self):
        return self.instance.name

    def get_property(self, name):
        if name in ("displayName", "label"):
            return True, self.instance.display_name
        if name == "name":
            return True, self.instance.name
        if name == "id":
            return True, self.instance.name
        if name == "capabilities":
            return True, list(self.instance.spec.capabilities)
        if name.startswith("current") and len(name) > len("current"):
            attr = name[len("current"):]
            attr = attr[:1].lower() + attr[1:]
            return True, self._current(attr)
        if name.startswith("latest") and len(name) > len("latest"):
            attr = name[len("latest"):]
            attr = attr[:1].lower() + attr[1:]
            return True, self._current(attr)
        if name in self.instance.spec.attributes:
            return True, self._current(name)
        return _UNHANDLED

    def _current(self, attribute):
        # Raw values: numeric attributes stay numeric (SmartThings'
        # currentTemperature is a number; only evt.value is a string).
        return self.ctx.get_attribute(self.instance.name, attribute)

    def invoke(self, name, args, named):
        if name in ("currentValue", "latestValue"):
            return True, self._current(args[0])
        if name in ("currentState", "latestState"):
            attr = args[0]
            value = self.ctx.get_attribute(self.instance.name, attr)
            return True, StateRecord(attr, value, DateValue(self.ctx.now_millis()))
        if name in ("eventsSince", "statesSince", "events", "eventsBetween"):
            return True, self._events_since(args)
        if name == "hasCapability":
            return True, self.instance.has_capability(str(args[0]))
        if name == "hasCommand":
            return True, self.instance.command(str(args[0])) is not None
        if name == "hasAttribute":
            return True, str(args[0]) in self.instance.spec.attributes
        if name == "getDisplayName" or name == "getLabel":
            return True, self.instance.display_name
        if name == "getId" or name == "getName":
            return True, self.instance.name
        if name == "supportedAttributes":
            return True, list(self.instance.spec.attributes)
        command = self.instance.command(name)
        if command is not None:
            self.ctx.actuator_command(self.instance.name, name, list(args),
                                      self.app_name)
            return True, None
        return _UNHANDLED

    def _events_since(self, args):
        since = 0
        if args and isinstance(args[0], DateValue):
            since = args[0].millis
        records = []
        for attribute, value, time in reversed(self.ctx.get_history(self.instance.name)):
            if time >= since:
                records.append(StateRecord(attribute, value, DateValue(time)))
        return records

    def __eq__(self, other):
        return isinstance(other, DeviceHandle) and other.instance.name == self.instance.name

    def __hash__(self):
        return hash(("DeviceHandle", self.instance.name))

    def __repr__(self):
        return "DeviceHandle(%r)" % (self.instance.name,)


class DeviceGroup:
    """A ``multiple: true`` device input: commands fan out, reads fan in."""

    __slots__ = ("handles",)

    def __init__(self, handles):
        self.handles = list(handles)

    def get_property(self, name):
        values = []
        for handle in self.handles:
            handled, value = handle.get_property(name)
            if not handled:
                return _UNHANDLED
            values.append(value)
        return True, values

    def invoke(self, name, args, named):
        results = []
        handled_any = False
        for handle in self.handles:
            handled, result = handle.invoke(name, args, named)
            if handled:
                handled_any = True
                results.append(result)
        if handled_any:
            return True, results
        return _UNHANDLED

    def __iter__(self):
        return iter(self.handles)

    def __len__(self):
        return len(self.handles)

    def __getitem__(self, index):
        return self.handles[index]

    def __repr__(self):
        return "DeviceGroup(%r)" % ([h.instance.name for h in self.handles],)


class LocationHandle:
    """The global ``location`` object."""

    __slots__ = ("ctx", "app_name")

    def __init__(self, ctx, app_name):
        self.ctx = ctx
        self.app_name = app_name

    def get_property(self, name):
        if name == "mode":
            return True, self.ctx.get_mode()
        if name == "currentMode":
            return True, self.ctx.get_mode()
        if name == "modes":
            return True, list(self.ctx.modes())
        if name == "name":
            return True, "Home"
        if name == "contactBookEnabled":
            return True, False
        return _UNHANDLED

    def set_property(self, name, value):
        if name == "mode":
            self.ctx.set_location_mode(str(value), self.app_name)
            return True
        return False

    def invoke(self, name, args, named):
        if name == "setMode":
            self.ctx.set_location_mode(str(args[0]), self.app_name)
            return True, None
        if name == "getMode":
            return True, self.ctx.get_mode()
        return _UNHANDLED

    def __repr__(self):
        return "LocationHandle(mode=%r)" % (self.ctx.get_mode(),)


class EventHandle:
    """The ``evt`` object passed to an event handler."""

    __slots__ = ("event", "ctx", "device_handle")

    def __init__(self, event, ctx, device_handle=None):
        self.event = event
        self.ctx = ctx
        self.device_handle = device_handle

    def get_property(self, name):
        event = self.event
        if name in ("value", "stringValue"):
            return True, _stringify(event.value)
        if name == "name":
            return True, event.attribute
        if name == "device":
            return True, self.device_handle
        if name == "deviceId":
            return True, event.device
        if name == "displayName":
            if self.device_handle is not None:
                return True, self.device_handle.instance.display_name
            return True, event.device or event.source
        if name == "descriptionText":
            return True, "%s is %s" % (event.device or event.source, event.value)
        if name in ("doubleValue", "floatValue", "numericValue", "numberValue"):
            return True, float(event.value)
        if name in ("integerValue", "longValue"):
            return True, int(float(event.value))
        if name == "date":
            return True, DateValue(self.ctx.now_millis())
        if name == "isPhysical":
            return True, event.source == "device"
        if name == "source":
            return True, event.source
        return _UNHANDLED

    def invoke(self, name, args, named):
        if name == "isStateChange":
            return True, True
        handled, value = self.get_property(name)
        if handled:
            return True, value
        return _UNHANDLED

    def __repr__(self):
        return "EventHandle(%s)" % (self.event.describe(),)


class AppStateMap:
    """The persistent ``state``/``atomicState`` map of an app."""

    __slots__ = ("mapping",)

    def __init__(self, mapping):
        self.mapping = mapping

    def get_property(self, name):
        return True, self.mapping.get(name)

    def set_property(self, name, value):
        self.mapping[name] = value
        return True

    def invoke(self, name, args, named):
        from repro.translator.builtins import call_builtin
        return call_builtin(self.mapping, name, args, None, None)

    def __repr__(self):
        return "AppStateMap(%r)" % (self.mapping,)


class AppHandle:
    """The ``app`` object (install metadata)."""

    __slots__ = ("app_name",)

    def __init__(self, app_name):
        self.app_name = app_name

    def get_property(self, name):
        if name in ("label", "name"):
            return True, self.app_name
        if name == "id":
            return True, self.app_name
        return _UNHANDLED

    def invoke(self, name, args, named):
        if name in ("getLabel", "getName"):
            return True, self.app_name
        return _UNHANDLED


class LogHandle:
    """``log`` - entries go to the trace recorder, not stdout."""

    __slots__ = ("ctx", "app_name")

    _LEVELS = ("debug", "info", "trace", "warn", "error")

    def __init__(self, ctx, app_name):
        self.ctx = ctx
        self.app_name = app_name

    def get_property(self, name):
        return _UNHANDLED

    def invoke(self, name, args, named):
        if name in self._LEVELS:
            message = " ".join(to_groovy_string(a) for a in args)
            self.ctx.log(self.app_name, name, message)
            return True, None
        return _UNHANDLED


class MathHandle:
    """The ``Math`` class."""

    def get_property(self, name):
        if name == "PI":
            return True, 3.141592653589793
        return _UNHANDLED

    def invoke(self, name, args, named):
        import math
        table = {
            "max": lambda a: max(a), "min": lambda a: min(a),
            "abs": lambda a: abs(a[0]), "round": lambda a: round(a[0]),
            "floor": lambda a: math.floor(a[0]), "ceil": lambda a: math.ceil(a[0]),
            "sqrt": lambda a: math.sqrt(a[0]), "pow": lambda a: a[0] ** a[1],
        }
        if name in table:
            return True, table[name](list(args))
        return _UNHANDLED
