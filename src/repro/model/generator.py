"""Model Generator (§8): bind apps + configuration + devices into a system.

Takes (i) the IR of the apps' event handlers, (ii) the configuration from
the Configuration Extractor, and (iii) the safety properties' role
vocabulary, and produces the :class:`~repro.model.system.IoTSystem` the
checker explores.  Device-association roles that are derivable from device
types (every presence sensor is a ``presence_sensors`` member; a single lock
is *the* ``main_door_lock``) are filled in automatically; ambiguous roles
(which outlet feeds the heater?) must come from the user - mirroring §7's
device-association interface.
"""

from repro.devices.instance import DeviceInstance
from repro.model.system import AppInstance, IoTSystem


class ConfigurationError(ValueError):
    """Raised when a configuration cannot be bound to the app corpus."""


#: roles auto-derived from capabilities: role -> (capability, plural)
_DERIVED_ROLES = [
    ("presence_sensors", "presenceSensor", True),
    ("motion_sensors", "motionSensor", True),
    ("smoke_detectors", "smokeDetector", True),
    ("co_detectors", "carbonMonoxideDetector", True),
    ("water_sensors", "waterSensor", True),
    ("entry_contacts", "contactSensor", True),
    ("humidity_sensors", "relativeHumidityMeasurement", True),
    ("sleep_sensors", "sleepSensor", True),
    ("locks", "lock", True),
    ("window_shades", "windowShade", True),
    ("main_door_lock", "lock", False),
    ("garage_door", "garageDoorControl", False),
    ("alarm", "alarm", False),
    ("siren", "alarm", False),
    ("thermostat", "thermostat", False),
    ("camera", "imageCapture", False),
    ("speaker", "musicPlayer", False),
    ("temp_sensor", "temperatureMeasurement", False),
    ("entry_door_control", "doorControl", False),
    ("water_valve", "valve", False),
    ("leak_shutoff_valve", "valve", False),
]


class ModelGenerator:
    """Builds :class:`IoTSystem` objects from configurations.

    ``app_registry`` maps app names to parsed :class:`SmartApp` objects
    (usually :func:`repro.corpus.load_market_apps`).
    """

    def __init__(self, app_registry):
        self.app_registry = dict(app_registry)

    def build(self, config, enable_failures=False, strict=True,
              user_mode_events=False):
        """Assemble the system; ``strict`` rejects unknown apps/devices."""
        devices = {}
        for device_config in config.devices:
            devices[device_config.name] = DeviceInstance(
                device_config.name, device_config.type, device_config.label)

        apps = []
        for app_config in config.apps:
            smart_app = self.app_registry.get(app_config.app)
            if smart_app is None:
                if strict:
                    raise ConfigurationError("unknown app %r" % app_config.app)
                continue
            self._check_bindings(smart_app, app_config, devices, strict)
            apps.append(AppInstance(smart_app, app_config.bindings,
                                    instance_name=app_config.instance_name))

        association = self._derive_association(config, devices)
        return IoTSystem(
            devices=devices,
            apps=apps,
            contacts=config.contacts,
            modes=config.modes,
            initial_mode=config.initial_mode,
            association=association,
            http_allowed=config.http_allowed,
            enable_failures=enable_failures,
            user_mode_events=user_mode_events,
        )

    def _check_bindings(self, smart_app, app_config, devices, strict):
        for input_name, value in app_config.bindings.items():
            declaration = smart_app.input(input_name)
            if declaration is None:
                if strict:
                    raise ConfigurationError(
                        "app %r has no input %r" % (app_config.app, input_name))
                continue
            if declaration.is_device:
                names = value if isinstance(value, list) else [value]
                for name in names:
                    device = devices.get(name)
                    if device is None:
                        if strict:
                            raise ConfigurationError(
                                "binding %s.%s references unknown device %r"
                                % (app_config.app, input_name, name))
                        continue
                    if not device.has_capability(declaration.capability):
                        if strict:
                            raise ConfigurationError(
                                "device %r lacks capability %r required by "
                                "%s.%s" % (name, declaration.capability,
                                           app_config.app, input_name))
        if strict:
            for declaration in smart_app.inputs:
                if declaration.required and declaration.name not in app_config.bindings:
                    if declaration.default is not None:
                        app_config.bindings[declaration.name] = declaration.default
                    else:
                        raise ConfigurationError(
                            "required input %s.%s is unbound"
                            % (app_config.app, declaration.name))

    def _derive_association(self, config, devices):
        association = dict(config.association)
        for role, capability_name, plural in _DERIVED_ROLES:
            if role in association:
                continue
            matching = [name for name, device in devices.items()
                        if device.has_capability(capability_name)]
            matching.sort()
            if plural and matching:
                association[role] = matching
            elif not plural and len(matching) == 1:
                association[role] = matching[0]
        return association


def build_system(app_registry, config, enable_failures=False, strict=True,
                 user_mode_events=False):
    """One-call convenience over :class:`ModelGenerator`."""
    return ModelGenerator(app_registry).build(config,
                                              enable_failures=enable_failures,
                                              strict=strict,
                                              user_mode_events=user_mode_events)
