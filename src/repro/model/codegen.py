"""Source-level code generation of the transition relation.

The closure compiler (:mod:`repro.model.compiler`) removed AST dispatch
but still interprets Python *objects* per event.  This module goes one
tier further, in the spirit of SPIN generating a C ``pan`` verifier from
the model: it emits one real Python **module** per app from the lowered
handler IR - straight-line functions specialized against the concrete
:class:`~repro.model.system.IoTSystem` - then ``compile()``/``exec``'s
the source so handlers execute as ordinary CPython bytecode.

Three cooperating layers:

* :class:`SourceEmitter` mirrors the closure compiler node-for-node and
  emits deterministic Python source.  Control flow (``if``/``while``/
  ``for``/``switch``/``try``) becomes native Python control flow; known
  intra-app calls dispatch **statically** (the callee is resolved to its
  generated function at generation time); scope chains, platform APIs
  and Groovy operator semantics route through the same
  :class:`~repro.model.interpreter.Interpreter` helpers both other tiers
  use, keeping the interpreter a meaningful differential oracle.
* :class:`GeneratedExecutor` subclasses :class:`CompiledExecutor`, so
  entry points and semantic helpers are shared; it adds the small
  ``_g_*`` runtime surface the generated code calls and - unlike the
  per-handler-run construction of the other tiers - supports
  :meth:`~GeneratedExecutor.rebind` pooling: the environment is built
  once and re-armed per handler run with two dict copies.
* :class:`CodegenPlan` owns a system's generated programs, the executor
  pool, the digest-keyed on-disk source cache, and the **lean**
  transition relation: a traceless :class:`Cascade` subclass that skips
  all ``TraceStep`` recording and label formatting during search
  (violating paths are replayed through the traced relation by the
  engine, so reported traces are byte-identical to the other tiers).

Generated sources are cached under ``~/.cache/repro/codegen/<digest>/``
(override with ``EngineOptions.codegen_cache`` or the
``$REPRO_CODEGEN_CACHE`` environment variable), keyed by the system's
semantic digest: generation is pay-once-per-corpus, and sharded workers
regenerate executors from the cache by digest instead of pickling
closures.  Emission is deterministic - a fixed digest maps to
byte-identical module text - so cached modules can be linted and
diffed.  Apps whose IR defeats the emitter fall back to the closure
compiler (or the interpreter) exactly like :meth:`Cascade._executor`.
"""

import hashlib
import io
import os
import tempfile

from repro.checker.violations import TraceStep
from repro.groovy import ast
from repro.model import handles
from repro.model.cascade import (
    MAX_INTERNAL_EVENTS,
    NO_FAILURE,
    TIME_QUANTUM_MS,
    Cascade,
    FailureScenario,
    _coerce_attribute_value,
    _freeze_arg,
)
from repro.model.compiler import (
    CompiledClosure,
    CompiledExecutor,
    CompiledMethod,
    CompiledProgram,
)
from repro.model.events import APP, DEVICE, LOCATION, Event, ExternalEvent
from repro.model.handles import DeviceHandle, EventHandle
from repro.model.interpreter import (
    DEFAULT_OP_BUDGET,
    ClosureValue,
    ExecutionError,
    Interpreter,
    _Break,
    _Continue,
    _GroovyThrow,
    assign_index_value,
    assign_property_value,
    get_property_value,
    index_value,
)
from repro.model.schema import ABSENT
from repro.translator.builtins import is_groovy_truthy, to_groovy_string

__all__ = [
    "CODEGEN_SCHEMA_VERSION",
    "CodegenError",
    "CodegenPlan",
    "GeneratedExecutor",
    "GeneratedProgram",
    "GenMethod",
    "GenParam",
    "SourceEmitter",
    "default_cache_dir",
    "generate_source",
]

#: bumped whenever emitted-source semantics change; part of the cache
#: directory name so stale modules from an older emitter never load
CODEGEN_SCHEMA_VERSION = 1


class CodegenError(Exception):
    """Raised when an app's IR contains a construct we cannot emit
    (callers fall back to the closure compiler / interpreter)."""


class _Pos:
    """A source position constant embedded in generated modules (the
    shared runtime helpers report errors at ``node.line``/``node.col``)."""

    __slots__ = ("line", "col")

    def __init__(self, line, col):
        self.line = line
        self.col = col

    def __repr__(self):
        return "_Pos(%d, %d)" % (self.line, self.col)


class GenParam:
    """A generated method/closure parameter (name only: default thunks
    live in the method's ``defaults`` tuple, exactly like the closure
    compiler's :class:`CompiledMethod`)."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return "GenParam(%r)" % (self.name,)


#: generated methods reuse the compiled-method record: ``(name, params,
#: defaults, body)`` with ``body`` a module-level generated function
GenMethod = CompiledMethod


class GeneratedProgram(CompiledProgram):
    """All generated methods of one app, plus cache provenance."""

    __slots__ = ("app_name", "source_path")

    def __init__(self, methods, app_name, source_path=None):
        super().__init__(methods)
        self.app_name = app_name
        self.source_path = source_path

    def __repr__(self):
        return "GeneratedProgram(%r, methods=%d)" % (self.app_name,
                                                     len(self.methods))


# ----------------------------------------------------------------------
# source emission
# ----------------------------------------------------------------------

_IDENT_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_")

_CAST_INT = ("int", "Integer", "long", "Long", "short", "BigInteger")
_CAST_FLOAT = ("float", "double", "Float", "Double", "BigDecimal")


def _is_identifier(name):
    return (name and name[0] not in "0123456789"
            and all(ch in _IDENT_OK for ch in name)
            and not name.startswith("__"))


class _Writer:
    """An indented line buffer for one generated function."""

    __slots__ = ("lines", "indent")

    def __init__(self):
        self.lines = []
        self.indent = 1

    def emit(self, text):
        self.lines.append("    " * self.indent + text)

    def block(self):
        self.indent += 1

    def end(self):
        self.indent -= 1


class SourceEmitter:
    """Emits one deterministic Python module from an app's lowered IR.

    Mirrors :class:`repro.model.compiler._Compiler` construct-for-
    construct; every semantic decision below cites the closure compiler
    behaviour it reproduces.  Statement emission returns ``True`` when
    the emitted code definitely left the function (``return``/``raise``/
    ``break``/``continue`` on every path we emit), which is how tail
    blocks decide whether a trailing ``return None`` is needed.
    """

    def __init__(self, program):
        self.program = program
        # later definitions win, exactly like ``compile_program``'s dict
        self.methods_by_name = {m.name: m for m in program.methods}
        self.functions = []       # finished function line-lists, in order
        self.positions = {}       # (line, col) -> "_P<n>"
        self.used = set()         # runtime names to import
        self.counter = 0
        self._fn_names = {}       # groovy method name -> generated fn name

    # -- small helpers -------------------------------------------------

    def _tmp(self, prefix):
        self.counter += 1
        return "_%s%d" % (prefix, self.counter)

    def _pos(self, node):
        key = (node.line, node.col)
        name = self.positions.get(key)
        if name is None:
            name = "_P%d" % len(self.positions)
            self.positions[key] = name
            self.used.add("_Pos")
        return name

    def _fn_name(self, method_name, index):
        name = self._fn_names.get(method_name)
        if name is None:
            name = ("m_%s" % method_name if _is_identifier(method_name)
                    else "m_x%d" % index)
            self._fn_names[method_name] = name
        return name

    # -- module --------------------------------------------------------

    def emit_module(self, app_name, digest):
        methods = self.program.methods
        for index, method in enumerate(methods):
            self._fn_name(method.name, index)  # pre-bind: static call targets
        entries = []
        for index, method in enumerate(methods):
            entries.append(self._emit_method(method, index))

        out = io.StringIO()
        out.write('"""Generated handler module for app %r.\n\n'
                  "System digest: %s (codegen schema v%d).\n"
                  "Auto-generated by repro.model.codegen - do not edit.\n"
                  '"""\n' % (app_name, digest, CODEGEN_SCHEMA_VERSION))
        if entries:
            self.used.update(("GenMethod", "GenParam"))
        imports = sorted(self.used)
        if imports:
            out.write("\nfrom repro.model.codegen import (\n")
            for name in imports:
                out.write("    %s,\n" % name)
            out.write(")\n")
        if self.positions:
            out.write("\n")
            for (line, col), name in sorted(self.positions.items(),
                                            key=lambda item: item[1]):
                out.write("%s = _Pos(%d, %d)\n" % (name, line, col))
        for lines in self.functions:
            out.write("\n\n")
            out.write("\n".join(lines))
            out.write("\n")
        out.write("\n\nMETHODS = {\n")
        for entry in entries:
            out.write("    %s,\n" % entry)
        out.write("}\n")
        return out.getvalue()

    def _emit_method(self, method, index):
        fn = self._fn_name(method.name, index)
        defaults = []
        for pidx, param in enumerate(method.params):
            if param.default is None:
                defaults.append("None")
                continue
            dname = "_d_%s_%d" % (fn, pidx)
            w = _Writer()
            w.lines.append("def %s(rt, s0):" % dname)
            w.emit("return %s" % self._expr(w, param.default, "s0"))
            self.functions.append(w.lines)
            defaults.append(dname)
        self._emit_function(fn, method.body)
        params = ", ".join("GenParam(%r)" % p.name for p in method.params)
        if params:
            params += ","
        return '%r: GenMethod(%r, (%s), (%s%s), %s)' % (
            method.name, method.name, params,
            ", ".join(defaults), "," if defaults else "", fn)

    def _emit_function(self, fn, block):
        """One ``def fn(rt, s0)`` whose body is the block in tail
        position (mirrors ``_call_compiled``/``invoke_closure`` calling
        ``body(self, [scope])`` and returning its value)."""
        w = _Writer()
        w.lines.append("def %s(rt, s0):" % fn)
        if not block.stmts:
            w.emit("return None")
        else:
            w.emit("_t = rt._tick")
            exited = self._stmts(w, block, "s0", [], tail=True)
            if not exited:
                w.emit("return None")
        self.functions.append(w.lines)

    # -- statements ----------------------------------------------------

    def _stmts(self, w, block, sv, hctx, tail):
        """Emit a statement list into the *current* scope ``sv`` (scope
        creation is the caller's job).  ``rt._tick()`` precedes every
        statement, as in ``compile_block``."""
        stmts = block.stmts
        if not stmts:
            w.emit("pass")
            return False
        exited = False
        for index, stmt in enumerate(stmts):
            w.emit("_t()")
            exited = self._stmt(w, stmt, sv, hctx,
                                tail and index == len(stmts) - 1)
        return exited

    def _scoped_stmts(self, w, block, sv, hctx, tail, seed=None):
        """Emit a block in a fresh lexical scope ``sv + [{}]`` (created
        only when the body actually references it, keeping the emitted
        source lint-clean)."""
        new_sv = self._tmp("s")
        inner = _Writer()
        inner.indent = w.indent
        exited = self._stmts(inner, block, new_sv, hctx, tail)
        body = "\n".join(inner.lines)
        if new_sv in body:
            w.emit("%s = %s + [%s]" % (new_sv, sv, seed or "{}"))
        w.lines.extend(inner.lines)
        return exited

    def _stmt(self, w, stmt, sv, hctx, tail):
        kind = type(stmt).__name__
        method = getattr(self, "_stmt_%s" % kind, None)
        if method is None:
            raise CodegenError("cannot emit statement %s" % kind)
        return method(w, stmt, sv, hctx, tail)

    def _stmt_ExprStmt(self, w, stmt, sv, hctx, tail):
        value = self._expr(w, stmt.value, sv)
        if tail:
            w.emit("return %s" % value)
            return True
        w.emit(value)
        return False

    def _stmt_VarDecl(self, w, stmt, sv, hctx, tail):
        if stmt.value is None:
            w.emit("%s[-1][%r] = None" % (sv, stmt.name))
        else:
            w.emit("%s[-1][%r] = %s" % (sv, stmt.name,
                                        self._expr(w, stmt.value, sv)))
        return False

    def _stmt_Assign(self, w, stmt, sv, hctx, tail):
        target = stmt.target
        if isinstance(target, ast.Name):
            w.emit("rt._assign_name(%r, %s, %s)"
                   % (target.id, self._expr(w, stmt.value, sv), sv))
            return False
        if isinstance(target, ast.Property):
            # value first, then the object, exactly like ``assign_property``
            self.used.add("assign_property_value")
            value_tmp = self._tmp("v")
            obj_tmp = self._tmp("o")
            w.emit("%s = %s" % (value_tmp, self._expr(w, stmt.value, sv)))
            w.emit("%s = %s" % (obj_tmp, self._expr(w, target.obj, sv)))
            call = "assign_property_value(%s, %r, %s, %s)" % (
                obj_tmp, target.name, value_tmp, self._pos(stmt))
            if target.safe:
                w.emit("if %s is not None:" % obj_tmp)
                w.block()
                w.emit(call)
                w.end()
            else:
                w.emit(call)
            return False
        if isinstance(target, ast.Index):
            self.used.add("assign_index_value")
            value_tmp = self._tmp("v")
            obj_tmp = self._tmp("o")
            w.emit("%s = %s" % (value_tmp, self._expr(w, stmt.value, sv)))
            w.emit("%s = %s" % (obj_tmp, self._expr(w, target.obj, sv)))
            w.emit("assign_index_value(%s, %s, %s, %s)"
                   % (obj_tmp, self._expr(w, target.index, sv), value_tmp,
                      self._pos(stmt)))
            return False
        self.used.add("ExecutionError")
        w.emit("raise ExecutionError(%r, %d, %d)"
               % ("invalid assignment target", stmt.line, stmt.col))
        return True

    def _stmt_If(self, w, stmt, sv, hctx, tail):
        self.used.add("is_groovy_truthy")
        w.emit("if is_groovy_truthy(%s):" % self._expr(w, stmt.cond, sv))
        w.block()
        then_exited = self._scoped_stmts(w, stmt.then, sv, hctx, tail)
        w.end()
        if stmt.orelse is None:
            return False
        w.emit("else:")
        w.block()
        else_exited = self._scoped_stmts(w, stmt.orelse, sv, hctx, tail)
        w.end()
        return then_exited and else_exited

    def _stmt_While(self, w, stmt, sv, hctx, tail):
        self.used.add("is_groovy_truthy")
        self.used.update(("_Break", "_Continue"))
        w.emit("while is_groovy_truthy(%s):" % self._expr(w, stmt.cond, sv))
        w.block()
        w.emit("_t()")
        self._emit_loop_body(w, stmt.body, sv, hctx)
        w.end()
        return False

    def _stmt_ForIn(self, w, stmt, sv, hctx, tail):
        self.used.update(("_Break", "_Continue"))
        item = self._tmp("i")
        w.emit("for %s in rt._iterate(%s):"
               % (item, self._expr(w, stmt.iterable, sv)))
        w.block()
        w.emit("_t()")
        self._emit_loop_body(w, stmt.body, sv, hctx,
                             seed="{%r: %s}" % (stmt.var, item))
        w.end()
        return False

    def _emit_loop_body(self, w, block, sv, hctx, seed=None):
        """The ``try: <body> except _Break: break except _Continue:
        continue`` iteration wrapper shared by both loops (the raising
        forms still arrive from nested closures)."""
        w.emit("try:")
        w.block()
        self._scoped_stmts(w, block, sv, hctx + ["loop"], tail=False,
                           seed=seed)
        w.end()
        w.emit("except _Break:")
        w.block()
        w.emit("break")
        w.end()
        w.emit("except _Continue:")
        w.block()
        w.emit("continue")
        w.end()

    def _stmt_Return(self, w, stmt, sv, hctx, tail):
        if stmt.value is None:
            w.emit("return None")
        else:
            w.emit("return %s" % self._expr(w, stmt.value, sv))
        return True

    def _stmt_Break(self, w, stmt, sv, hctx, tail):
        if hctx and hctx[-1] == "loop":
            w.emit("break")
        else:
            # nearest handler is a switch arm (or the function boundary):
            # raise, as both other tiers do
            self.used.add("_Break")
            w.emit("raise _Break()")
        return True

    def _stmt_Continue(self, w, stmt, sv, hctx, tail):
        if "loop" in hctx:
            # ``continue`` binds to the nearest enclosing Python loop,
            # matching _Continue propagating through switch-arm handlers
            w.emit("continue")
        else:
            self.used.add("_Continue")
            w.emit("raise _Continue()")
        return True

    def _stmt_Block(self, w, stmt, sv, hctx, tail):
        return self._scoped_stmts(w, stmt, sv, hctx, tail)

    def _stmt_Switch(self, w, stmt, sv, hctx, tail):
        self.used.add("_Break")
        subject = self._tmp("sw")
        w.emit("%s = %s" % (subject, self._expr(w, stmt.subject, sv)))
        default_body = None
        keyword = "if"
        for case in stmt.cases:
            if not case.values:
                default_body = case.body  # position-independent, runs last
                continue
            tests = " or ".join(
                "rt._case_matches(%s, %s)" % (subject, self._expr(w, value, sv))
                for value in case.values)
            w.emit("%s %s:" % (keyword, tests))
            keyword = "elif"
            w.block()
            self._emit_switch_arm(w, case.body, sv, hctx, tail)
            w.end()
        if default_body is not None:
            if keyword == "if":  # degenerate switch: only a default arm
                self._emit_switch_arm(w, default_body, sv, hctx, tail)
            else:
                w.emit("else:")
                w.block()
                self._emit_switch_arm(w, default_body, sv, hctx, tail)
                w.end()
        return False

    def _emit_switch_arm(self, w, block, sv, hctx, tail):
        """One matched arm: ``try: <body> except _Break: ...`` -
        ``break`` inside an arm exits the switch, not any outer loop."""
        w.emit("try:")
        w.block()
        self._scoped_stmts(w, block, sv, hctx + ["arm"], tail)
        w.end()
        w.emit("except _Break:")
        w.block()
        if tail:
            w.emit("return None")
        else:
            w.emit("pass")
        w.end()

    def _stmt_Try(self, w, stmt, sv, hctx, tail):
        self.used.update(("_GroovyThrow", "ExecutionError"))
        exc = self._tmp("e")
        w.emit("try:")
        w.block()
        self._scoped_stmts(w, stmt.body, sv, hctx, tail=False)
        w.end()
        w.emit("except (_GroovyThrow, ExecutionError) as %s:" % exc)
        w.block()
        if stmt.catches:
            _type, catch_var, catch_block = stmt.catches[0]
            seed = ("{%r: %s.value if isinstance(%s, _GroovyThrow) "
                    "else str(%s)}" % (catch_var, exc, exc, exc))
            inner = _Writer()
            inner.indent = w.indent
            self._scoped_stmts(inner, catch_block, sv, hctx, tail=False,
                               seed=seed)
            if exc not in "\n".join(inner.lines):
                inner.lines.insert(0, "    " * w.indent + "del %s" % exc)
            w.lines.extend(inner.lines)
        else:
            w.emit("if isinstance(%s, ExecutionError):" % exc)
            w.block()
            w.emit("raise")
            w.end()
        w.end()
        if stmt.finally_body is not None:
            w.emit("finally:")
            w.block()
            self._scoped_stmts(w, stmt.finally_body, sv, hctx, tail=False)
            w.end()
        return False

    def _stmt_Throw(self, w, stmt, sv, hctx, tail):
        self.used.add("_GroovyThrow")
        w.emit("raise _GroovyThrow(%s)" % self._expr(w, stmt.value, sv))
        return True

    def _stmt_MethodDef(self, w, stmt, sv, hctx, tail):
        w.emit("pass")  # nested defs are ignored, as in both other tiers
        return False

    # -- expressions ---------------------------------------------------

    def _expr(self, w, expr, sv):
        kind = type(expr).__name__
        method = getattr(self, "_expr_%s" % kind, None)
        if method is None:
            raise CodegenError("cannot emit expression %s" % kind)
        return method(w, expr, sv)

    def _expr_Literal(self, w, expr, sv):
        return repr(expr.value)

    def _expr_GString(self, w, expr, sv):
        if not expr.parts:
            return "''"
        self.used.add("to_groovy_string")
        pieces = []
        for part in expr.parts:
            if isinstance(part, str):
                pieces.append(repr(part))
            else:
                pieces.append("to_groovy_string(%s)"
                              % self._expr(w, part, sv))
        return "(%s)" % " + ".join(pieces)

    def _expr_Name(self, w, expr, sv):
        return "rt._g_name(%s, %r)" % (sv, expr.id)

    def _expr_ListLit(self, w, expr, sv):
        return "[%s]" % ", ".join(self._expr(w, item, sv)
                                  for item in expr.items)

    def _expr_MapLit(self, w, expr, sv):
        entries = []
        for entry in expr.entries:
            key = (self._expr(w, entry.key, sv)
                   if isinstance(entry.key, ast.Node) else repr(entry.key))
            entries.append("%s: %s" % (key, self._expr(w, entry.value, sv)))
        return "{%s}" % ", ".join(entries)

    def _expr_RangeLit(self, w, expr, sv):
        return "rt._g_range(%s, %s)" % (self._expr(w, expr.lo, sv),
                                        self._expr(w, expr.hi, sv))

    def _expr_Property(self, w, expr, sv):
        # null-tolerant whether safe or not, matching both other tiers
        self.used.add("get_property_value")
        tmp = self._tmp("o")
        return ("(get_property_value(%s, %r) if (%s := %s) is not None "
                "else None)" % (tmp, expr.name, tmp,
                                self._expr(w, expr.obj, sv)))

    def _expr_Index(self, w, expr, sv):
        self.used.add("index_value")
        return "index_value(%s, %s)" % (self._expr(w, expr.obj, sv),
                                        self._expr(w, expr.index, sv))

    def _expr_Closure(self, w, expr, sv):
        self.used.add("CompiledClosure")
        fn = self._tmp("c")
        self._emit_function(fn, expr.body)
        params = ", ".join("GenParam(%r)" % p.name for p in expr.params)
        if params:
            self.used.add("GenParam")
            params += ","
        return "CompiledClosure((%s), %s, list(%s))" % (params, fn, sv)

    def _expr_Unary(self, w, expr, sv):
        op = expr.op
        if op == "!":
            self.used.add("is_groovy_truthy")
            return ("(not is_groovy_truthy(%s))"
                    % self._expr(w, expr.operand, sv))
        if op in ("++", "--"):
            name = (expr.operand.id
                    if isinstance(expr.operand, ast.Name) else None)
            return "rt._g_incr(%s, %r, %s, %d)" % (
                sv, name, self._expr(w, expr.operand, sv),
                1 if op == "++" else -1)
        if op == "-":
            return "(-rt._to_number(%s))" % self._expr(w, expr.operand, sv)
        if op == "+":
            return "rt._to_number(%s)" % self._expr(w, expr.operand, sv)
        if op == "~":
            return "(~int(rt._to_number(%s)))" % self._expr(w, expr.operand, sv)
        raise CodegenError("unknown unary %r" % op)

    def _expr_Postfix(self, w, expr, sv):
        name = expr.operand.id if isinstance(expr.operand, ast.Name) else None
        return "rt._g_postfix(%s, %r, %s, %d)" % (
            sv, name, self._expr(w, expr.operand, sv),
            1 if expr.op == "++" else -1)

    def _expr_Ternary(self, w, expr, sv):
        self.used.add("is_groovy_truthy")
        return "(%s if is_groovy_truthy(%s) else %s)" % (
            self._expr(w, expr.then, sv), self._expr(w, expr.cond, sv),
            self._expr(w, expr.orelse, sv))

    def _expr_Elvis(self, w, expr, sv):
        self.used.add("is_groovy_truthy")
        tmp = self._tmp("v")
        return "(%s if is_groovy_truthy(%s := %s) else %s)" % (
            tmp, tmp, self._expr(w, expr.value, sv),
            self._expr(w, expr.fallback, sv))

    def _expr_Cast(self, w, expr, sv):
        target = expr.type_name
        value = self._expr(w, expr.value, sv)
        if target in _CAST_INT:
            tmp = self._tmp("v")
            return ("(int(float(%s)) if (%s := %s) is not None else None)"
                    % (tmp, tmp, value))
        if target in _CAST_FLOAT:
            tmp = self._tmp("v")
            return ("(float(%s) if (%s := %s) is not None else None)"
                    % (tmp, tmp, value))
        if target in ("String", "GString"):
            self.used.add("to_groovy_string")
            return "to_groovy_string(%s)" % value
        if target in ("boolean", "Boolean"):
            self.used.add("is_groovy_truthy")
            return "is_groovy_truthy(%s)" % value
        if target in ("List", "ArrayList", "Collection"):
            tmp = self._tmp("v")
            return ("(list(rt._iterate(%s)) if (%s := %s) is not None "
                    "else [])" % (tmp, tmp, value))
        return value

    def _expr_New(self, w, expr, sv):
        return "rt._construct(%r, [%s], %s)" % (
            expr.type_name,
            ", ".join(self._expr(w, a, sv) for a in expr.args),
            self._pos(expr))

    def _expr_Binary(self, w, expr, sv):
        op = expr.op
        if op == "&&":
            self.used.add("is_groovy_truthy")
            return ("(is_groovy_truthy(%s) if is_groovy_truthy(%s) "
                    "else False)" % (self._expr(w, expr.right, sv),
                                     self._expr(w, expr.left, sv)))
        if op == "||":
            self.used.add("is_groovy_truthy")
            return ("(True if is_groovy_truthy(%s) else "
                    "is_groovy_truthy(%s))" % (self._expr(w, expr.left, sv),
                                               self._expr(w, expr.right, sv)))
        left = self._expr(w, expr.left, sv)
        right = self._expr(w, expr.right, sv)
        if op == "==":
            return "rt._equals(%s, %s)" % (left, right)
        if op == "!=":
            return "(not rt._equals(%s, %s))" % (left, right)
        if op in ("<", "<=", ">", ">="):
            return "rt._compare(%r, %s, %s)" % (op, left, right)
        if op == "+":
            return "rt._plus(%s, %s)" % (left, right)
        return "rt._binary(%r, %s, %s, %s)" % (op, left, right,
                                               self._pos(expr))

    def _call_pieces(self, w, expr, sv):
        """(args, named, closure) expression strings, evaluated in the
        same order every tier uses: positional, then named, then the
        trailing closure."""
        args = "[%s]" % ", ".join(self._expr(w, a, sv) for a in expr.args)
        named_entries = ", ".join(
            "%r: %s" % (entry.key, self._expr(w, entry.value, sv))
            for entry in expr.named if isinstance(entry.key, str))
        named = "{%s}" % named_entries
        closure = (self._expr_Closure(w, expr.closure, sv)
                   if expr.closure is not None else "None")
        return args, named, closure

    def _expr_Call(self, w, expr, sv):
        name = expr.name
        if name in self.methods_by_name:
            return self._known_call(w, expr, sv)
        args, named, closure = self._call_pieces(w, expr, sv)
        return "rt._g_dyncall(%r, %s, %s, %s, %s, %s)" % (
            name, args, named, closure, sv, self._pos(expr))

    def _known_call(self, w, expr, sv):
        """An intra-app call whose callee is statically known: dispatch
        straight to the generated function when the shapes line up,
        else through ``_g_call_known`` (the compiled-call rules)."""
        method = self.methods_by_name[expr.name]
        named_entries = [e for e in expr.named if isinstance(e.key, str)]
        simple = (not named_entries and expr.closure is None
                  and len(expr.args) <= len(method.params)
                  and all(p.default is None
                          for p in method.params[len(expr.args):]))
        if simple:
            fn = self._fn_names[expr.name]
            scope = ", ".join(
                "%r: %s" % (p.name, self._expr(w, expr.args[i], sv)
                            if i < len(expr.args) else "None")
                for i, p in enumerate(method.params))
            return "%s(rt, [{%s}])" % (fn, scope)
        args, named, closure = self._call_pieces(w, expr, sv)
        return "rt._g_call_known(METHODS[%r], %s, %s, %s)" % (
            expr.name, args, named, closure)

    def _expr_MethodCall(self, w, expr, sv):
        obj = self._expr(w, expr.obj, sv)
        tmp = self._tmp("o")
        args, named, closure = self._call_pieces(w, expr, sv)
        if expr.spread:
            invoke = "rt._g_spread(%s, %r, %s, %s, %s, %s)" % (
                tmp, expr.name, args, named, closure, self._pos(expr))
        else:
            invoke = "rt._invoke_on(%s, %r, %s, %s, %s, %s)" % (
                tmp, expr.name, args, named, closure, self._pos(expr))
        # the object evaluates first; None short-circuits before the
        # arguments run, safe-call or not, matching both other tiers
        return "(None if (%s := %s) is None else %s)" % (tmp, obj, invoke)


def generate_source(app_instance, digest=""):
    """Deterministic module text for one app's lowered IR.

    Raises :class:`CodegenError` when the IR defeats the emitter (the
    caller falls back to the closure compiler for this app).
    """
    emitter = SourceEmitter(app_instance._ir)
    return emitter.emit_module(app_instance.name, digest)


# ----------------------------------------------------------------------
# digest-keyed source cache
# ----------------------------------------------------------------------

def default_cache_dir():
    """``$REPRO_CODEGEN_CACHE`` or ``~/.cache/repro/codegen``."""
    override = os.environ.get("REPRO_CODEGEN_CACHE")
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro", "codegen")


def _app_slug(app_name):
    """A stable, collision-free file name for one app instance."""
    safe = "".join(ch if ch in _IDENT_OK else "-" for ch in app_name)
    tag = hashlib.sha1(app_name.encode("utf-8")).hexdigest()[:8]
    return "%s.%s.py" % (safe[:48] or "app", tag)


def module_cache_path(cache_dir, digest, app_name):
    """Where one app's generated module lives for one system digest."""
    return os.path.join(cache_dir, "v%d" % CODEGEN_SCHEMA_VERSION,
                        digest, _app_slug(app_name))


def _atomic_write(path, text):
    directory = os.path.dirname(path)
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def _exec_module(source, path, app_name):
    """``compile()``/``exec`` one generated module; returns its
    :class:`GeneratedProgram`."""
    code = compile(source, path or "<repro-codegen:%s>" % app_name, "exec")
    namespace = {}
    exec(code, namespace)
    return GeneratedProgram(namespace["METHODS"], app_name, source_path=path)


def load_program(app_instance, digest, cache_dir=None, _memory_cache={}):
    """The generated program for one app under one system digest.

    Reads the cached module byte-for-byte when present, else emits,
    persists atomically, and loads.  Returns ``None`` when generation
    fails (the caller falls back tier-by-tier).  ``cache_dir=False``
    disables the disk cache entirely (generation is in-memory only).
    """
    key = (cache_dir, digest, app_instance.name)
    cached = _memory_cache.get(key)
    if cached is not None:
        return cached or None
    path = None
    source = None
    if cache_dir is not False:
        path = module_cache_path(cache_dir or default_cache_dir(), digest,
                                 app_instance.name)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError:
            source = None
    try:
        if source is None:
            source = generate_source(app_instance, digest)
            if path is not None:
                try:
                    _atomic_write(path, source)
                except OSError:
                    path = None  # cache dir unwritable: stay in-memory
        program = _exec_module(source, path, app_instance.name)
    except Exception:
        _memory_cache[key] = False
        return None
    _memory_cache[key] = program
    return program


# ----------------------------------------------------------------------
# generated-code runtime
# ----------------------------------------------------------------------

class _PoolContext:
    """The construction-time stand-in context for pooled executors
    (environment building only needs ``ctx.system``; handles capture
    the live cascade through :meth:`GeneratedExecutor.rebind`)."""

    __slots__ = ("system",)

    def __init__(self, system):
        self.system = system


class GeneratedExecutor(CompiledExecutor):
    """Runs one app's *generated* methods.

    Entry points (``run_handler``/``call_method``/``invoke_closure``)
    and every semantic helper are inherited from the compiled tier; the
    ``_g_*`` methods below are the compact runtime surface the emitted
    source calls for the operations that must stay dynamic.

    Unlike the other tiers - which build a fresh executor (and
    environment) per handler run - a pooled instance is re-armed with
    :meth:`rebind`: the pristine environment is snapshotted once and a
    run costs two dict copies plus re-pointing the handles at the new
    cascade.
    """

    def __init__(self, app_instance, ctx, program,
                 op_budget=DEFAULT_OP_BUDGET):
        super().__init__(app_instance, ctx, program, op_budget)
        self._op_budget = op_budget
        self._pristine = None

    # -- pooling -------------------------------------------------------

    def _freeze_environment(self):
        env = dict(self._globals)
        settings = dict(env.get("settings") or {})
        ctx_handles = []
        for value in env.values():
            if isinstance(value, handles.DeviceGroup):
                ctx_handles.extend(value.handles)
            elif isinstance(value, (handles.DeviceHandle,
                                    handles.LocationHandle,
                                    handles.LogHandle)):
                ctx_handles.append(value)
        self._pristine = (env, settings, tuple(ctx_handles))

    def rebind(self, ctx):
        """Re-arm this executor for one handler run under ``ctx``."""
        if self._pristine is None:
            self._freeze_environment()
        env, settings, ctx_handles = self._pristine
        self.ctx = ctx
        self.budget = self._op_budget
        fresh = dict(env)
        fresh["settings"] = dict(settings)
        self._globals = fresh
        for handle in ctx_handles:
            handle.ctx = ctx

    # -- the generated-code runtime surface ----------------------------

    def _g_name(self, scopes, name):
        found, value = self._lookup(name, scopes)
        return value if found else None

    def _g_dyncall(self, name, args, named, closure, scopes, pos):
        # the static method table was consulted at generation time, so
        # only the local-closure and platform-API cases remain
        found, value = self._lookup(name, scopes)
        if found and isinstance(value, ClosureValue):
            return self.invoke_closure(value, args)
        return self._platform_api(name, args, named, closure, pos)

    def _g_call_known(self, method, args, named, closure):
        if named and not args:
            args = [named]
        if closure is not None:
            args.append(closure)
        return self._call_compiled(method, args)

    def _g_incr(self, scopes, name, value, delta):
        new = (self._to_number(value) or 0) + delta
        if name is not None:
            self._assign_name(name, new, scopes)
        return new

    def _g_postfix(self, scopes, name, value, delta):
        old = self._to_number(value) or 0
        if name is not None:
            self._assign_name(name, old + delta, scopes)
        return old

    def _g_spread(self, obj, name, args, named, closure, pos):
        return [self._invoke_on(item, name, args, named, closure, pos)
                for item in self._iterate(obj)]

    def _g_range(self, lo, hi):
        return list(range(int(self._to_number(lo)),
                          int(self._to_number(hi)) + 1))


# ----------------------------------------------------------------------
# the lean transition relation
# ----------------------------------------------------------------------

class _LeanCascade(Cascade):
    """A :class:`Cascade` that records a *skeleton* trace.

    Every state mutation, event, and monitor callback is identical to
    the traced cascade; the full ``TraceStep`` log (and its per-step
    label formatting) is dropped, and handler runs draw pooled
    executors from the plan.  Only the steps that feed violation
    attribution survive - app-attributed ``command``/``mode`` records,
    whose text carries exactly the ``device.command`` prefix the
    engine's actor refinement splits on - so dedup keys and app lists
    match the traced relation, and the engine regenerates the full
    rendered trace for the few *reported* counterexamples by replaying
    their label sequences through the traced relation.
    """

    def __init__(self, plan, system, state, monitor, scenario=NO_FAILURE):
        Cascade.__init__(self, system, state, monitor, scenario=scenario)
        self._plan = plan

    def run_external(self, ext):
        self.state.time += TIME_QUANTUM_MS
        if ext.kind == "sensor":
            if self.scenario.drops_report(ext.device):
                # SENSOR_DROP / EVENT_DROP / DEVICE_DEATH of the origin:
                # ground truth updates silently, no app is notified
                self.state.set_attribute(ext.device, ext.attribute, ext.value)
            elif self.scenario.kind == FailureScenario.DUPLICATE:
                changed = (self.state.attribute(ext.device, ext.attribute)
                           != ext.value)
                self.sensor_state_update(ext.device, ext.attribute, ext.value)
                if changed:
                    self._enqueue(Event(DEVICE, device=ext.device,
                                        attribute=ext.attribute,
                                        value=ext.value))
            elif self.scenario.kind == FailureScenario.STALE_READ:
                stale = self.get_attribute(ext.device, ext.attribute)
                self.sensor_state_update(ext.device, ext.attribute, ext.value)
                self._stale_reads = {(ext.device, ext.attribute): stale}
            else:
                self.sensor_state_update(ext.device, ext.attribute, ext.value)
        elif ext.kind == "touch":
            self._enqueue(Event(APP, app=ext.app))
        elif ext.kind == "mode":
            if ext.value != self.state.mode:
                self.state.mode = ext.value
                self._enqueue(Event(LOCATION, attribute="mode",
                                    value=ext.value))
        elif ext.kind == "timer":
            self._fire_timer(ext.app, ext.handler)
        elif ext.kind == "environment":
            self._enqueue(Event(LOCATION, attribute=ext.attribute,
                                value=ext.attribute))
        self._drain()
        return self.monitor.finish(self.state)

    def sensor_state_update(self, device_name, attribute, value):
        if self.state.attribute(device_name, attribute) == value:
            return
        self.state.set_attribute(device_name, attribute, value)
        self.state.record_event(device_name, attribute, value)
        self._enqueue(Event(DEVICE, device=device_name, attribute=attribute,
                            value=value))

    def actuator_command(self, device_name, command, args, app_name):
        instance = self.system.devices.get(device_name)
        effect = instance.command(command) if instance is not None else None
        payload = tuple(_freeze_arg(a) for a in args)
        self._step("command", "%s.%s" % (device_name, command),
                   app=app_name)
        self.monitor.on_command(device_name, command, payload, app_name,
                                effect)
        self.state.cascade_commands = self.state.cascade_commands + (
            (device_name, command, payload, app_name),)
        if effect is None:
            return
        if self.scenario.drops_command(device_name):
            reason = ("device dead"
                      if self.scenario.kind == FailureScenario.DEVICE_DEATH
                      else "actuator offline")
            self.monitor.on_command_dropped(device_name, command, app_name,
                                            reason)
            return
        value = effect.value
        if effect.takes_arg:
            value = payload[0] if payload else None
        value = _coerce_attribute_value(instance, effect.attribute, value)
        if self.state.attribute(device_name, effect.attribute) == value:
            return
        self.state.set_attribute(device_name, effect.attribute, value)
        self.state.record_event(device_name, effect.attribute, value)
        self._enqueue(Event(DEVICE, device=device_name,
                            attribute=effect.attribute, value=value))

    def dispatch_event(self, event):
        self._dispatched += 1
        if self._dispatched > MAX_INTERNAL_EVENTS:
            return
        for app_instance, handler, value_filter in (
                self.system.subscribers_for(event)):
            if (value_filter is not None
                    and str(event.value) != str(value_filter)):
                continue
            self._run_handler(app_instance, handler, event)

    def _run_handler(self, app_instance, handler, event):
        device_handle = None
        if event.device is not None:
            instance = self.system.devices.get(event.device)
            if instance is not None:
                device_handle = DeviceHandle(instance, self,
                                             app_instance.name)
        event_handle = EventHandle(event, self, device_handle)
        interp = self._plan.acquire(app_instance, self)
        try:
            interp.run_handler(handler, event_handle)
        except ExecutionError:
            pass  # the traced replay re-renders the log step

    def _step(self, kind, text, app=None, line=None):
        # skeleton trace: keep only what violation attribution reads
        if app is not None and (kind == "command" or kind == "mode"):
            self.steps.append(TraceStep(kind, text, app=app))

    def log(self, app_name, level, message):
        pass


class CodegenPlan:
    """One system's generated programs, executor pool and lean relation.

    Installed by the engine when ``options.engine == "codegen"``: the
    plan's :meth:`executor_factory` hooks :meth:`Cascade._executor` (so
    traced replays run generated code too), and :meth:`transitions` /
    :meth:`evaluate_slab` replace :meth:`IoTSystem.transitions` on the
    search path with traceless lean cascades over pooled executors.
    """

    def __init__(self, system, cache_dir=None, digest=None):
        self.system = system
        self.digest = digest if digest is not None else system.digest()
        self.cache_dir = cache_dir
        self.programs = {}
        self.generated = 0
        self.fallbacks = []
        self._pool = {}
        pool_ctx = _PoolContext(system)
        for app in system.apps:
            program = load_program(app, self.digest, cache_dir=cache_dir)
            self.programs[app.name] = program
            if program is None:
                self.fallbacks.append(app.name)
            else:
                self.generated += 1
                self._pool[app.name] = GeneratedExecutor(app, pool_ctx,
                                                         program)
        # schema slots for the sensor event classes, resolved once at
        # plan build (generation) time.  Subscriptions are static per
        # system, so each concrete (device, attribute, value) event also
        # resolves *here* whether any handler would run: subscriber-less
        # events take a cascade-free fast path in :meth:`evaluate_slab`
        # (the dominant case on sensor-rich systems - most sensor
        # readings interest no installed app).
        schema = system.state_schema()
        self._sensor_table = []
        for device, attribute, events in system._sensor_events():
            resolved = []
            for value, ext in events:
                subscribed = any(
                    value_filter is None or str(value) == str(value_filter)
                    for _app, _handler, value_filter in system.subscribers_for(
                        Event(DEVICE, device=device, attribute=attribute,
                              value=value)))
                resolved.append((value, ext, ext.label(), subscribed))
            self._sensor_table.append(
                (device, attribute, schema.slot_index(device, attribute),
                 resolved))

    # -- executors -----------------------------------------------------

    def executor_factory(self, app_instance, ctx):
        """:attr:`IoTSystem.executor_factory` hook for traced cascades
        (fresh executor per handler run, like the other tiers)."""
        program = self.programs.get(app_instance.name)
        if program is None:
            return None
        return GeneratedExecutor(app_instance, ctx, program)

    def acquire(self, app_instance, ctx):
        """A run-ready executor for one lean handler run: pooled and
        rebound when the app generated, per-run fallback otherwise."""
        pooled = self._pool.get(app_instance.name)
        if pooled is not None:
            pooled.rebind(ctx)
            return pooled
        if self.system.use_compiled:
            program = app_instance.compiled_program()
            if program is not None:
                return CompiledExecutor(app_instance, ctx, program)
        return Interpreter(app_instance, ctx)

    # -- the lean relation ---------------------------------------------

    def transitions(self, state, monitor_factory, event_filter=None):
        """Traceless mirror of :meth:`IoTSystem.transitions` (labels,
        successor states, violations identical; ``steps`` empty)."""
        out = []
        system = self.system
        for ext in system.external_choices(state):
            if event_filter is not None and not event_filter(ext):
                continue
            self._run_event(out, state, ext, monitor_factory)
        return out

    def evaluate_slab(self, jobs, monitor_factory):
        """Successor lists for a slab of states, event-class-major.

        ``jobs`` is ``[(state, event_filter-or-None, packed-or-None),
        ...]``; one pass per external event class covers the whole
        slab, so per-class work (the shared event objects, the schema
        slot, the value list) is touched once per slab instead of once
        per state.  When a job carries the state's *packed* tuple (the
        exact store's canonical key), sensor enabledness reads one slot
        straight out of the device block through the schema indices
        resolved at plan-build time; otherwise it falls back to the
        state's attribute walk.  Each state's transition list comes out
        in exactly the order :meth:`transitions` would produce, so a
        slab of one is indistinguishable from the classic path.
        """
        system = self.system
        results = [[] for _ in jobs]
        # the fast path below replicates exactly one lean cascade shape:
        # single NO_FAILURE scenario, one sensor update, no subscribed
        # handler, nothing else on the queue - any failure enumeration
        # or subscriber sends the event through the full cascade.  A
        # handler-less cascade reports exactly its invariant failures,
        # so the (memoized) compiled-invariant probe decides whether a
        # monitor needs to be built at all; when it does, the monitor
        # re-checks through the ordinary path and produces the
        # identical violation list
        fast_ok = (not system.enable_failures
                   and system.scenario_profile.is_clean)
        invariant_probe = getattr(monitor_factory(), "_compiled", None)
        probe_failed = (invariant_probe.failed_invariants
                        if invariant_probe is not None else None)
        for device, attribute, slot, events in self._sensor_table:
            for index, (state, filt, packed) in enumerate(jobs):
                if packed is not None and slot is not None:
                    block = packed[0][slot[0]]
                    current = (block[0][slot[1]] if block is not ABSENT
                               else ABSENT)
                    if current is ABSENT:
                        current = None
                else:
                    current = state.attribute(device, attribute)
                out = results[index]
                for value, ext, label, subscribed in events:
                    if value == current:
                        continue
                    if filt is not None and not filt(ext):
                        continue
                    if fast_ok and not subscribed:
                        # cascade-free: time quantum, the sensor write,
                        # the event record, the final invariant check -
                        # byte-identical to what a lean cascade with an
                        # empty dispatch would produce
                        new_state = state.copy()
                        new_state.cascade_commands = ()
                        new_state.time += TIME_QUANTUM_MS
                        new_state.set_attribute(device, attribute, value)
                        new_state.record_event(device, attribute, value)
                        if probe_failed is not None:
                            violations = (
                                monitor_factory().finish(new_state)
                                if probe_failed(new_state) else [])
                        else:
                            violations = monitor_factory().finish(new_state)
                        new_state.seal()
                        out.append((label, new_state, True, violations, []))
                        continue
                    self._run_event(out, state, ext, monitor_factory)
        for ext in system._state_independent_choices():
            for index, (state, filt, _packed) in enumerate(jobs):
                if filt is not None and not filt(ext):
                    continue
                self._run_event(results[index], state, ext, monitor_factory)
        for index, (state, filt, _packed) in enumerate(jobs):
            for app_name, handler, _periodic in state.schedules:
                ext = ExternalEvent("timer", app=app_name, handler=handler)
                if filt is not None and not filt(ext):
                    continue
                self._run_event(results[index], state, ext, monitor_factory)
            if system.user_mode_events:
                for mode in system.modes:
                    if mode == state.mode:
                        continue
                    ext = ExternalEvent("mode", value=mode)
                    if filt is not None and not filt(ext):
                        continue
                    self._run_event(results[index], state, ext,
                                    monitor_factory)
        return results

    def _run_event(self, out, state, ext, monitor_factory):
        """One external event's cascades (all failure scenarios)."""
        system = self.system
        for scenario in system.failure_scenarios(ext):
            new_state = state.copy()
            new_state.cascade_commands = ()
            monitor = monitor_factory()
            cascade = _LeanCascade(self, system, new_state, monitor,
                                   scenario)
            violations = cascade.run_external(ext)
            new_state.seal()
            suffix = scenario.label()
            out.append((ext.label() + suffix if suffix else ext.label(),
                        new_state, True, violations, cascade.steps))
