"""Input/output event extraction for event handlers (§5).

"Input events are (i) explicitly declared in the subscribe commands or,
(ii) identified via APIs that read states of smart devices, or (iii)
indicated by interrupts at specific times defined by schedule method calls.
Output events are invoked via APIs that change states of smart devices.
We enumerate the input and output events of an app using static analysis."

Events are *descriptors* ``attribute/value`` with ``value`` possibly ANY
(the paper renders ANY as ``"..."``).  Special attributes: ``app`` (touch),
``mode`` (location mode), ``time`` (schedule interrupts).
"""

from repro.devices.capabilities import capability
from repro.groovy import ast

#: wildcard event value ("..." in the paper's tables)
ANY = "..."


class EventDescriptor:
    """An event class: attribute plus value (or ANY)."""

    __slots__ = ("attribute", "value")

    def __init__(self, attribute, value=ANY):
        self.attribute = attribute
        self.value = value if value is not None else ANY

    def overlaps(self, other):
        """Whether events of this class can match the other class."""
        if self.attribute != other.attribute:
            return False
        return self.value == ANY or other.value == ANY or self.value == other.value

    def conflicts(self, other):
        """Same attribute, *different* specific values (the §5 merge rule)."""
        if self.attribute != other.attribute:
            return False
        if self.value == ANY or other.value == ANY:
            return False
        return self.value != other.value

    def __eq__(self, other):
        return (isinstance(other, EventDescriptor)
                and other.attribute == self.attribute
                and other.value == self.value)

    def __hash__(self):
        return hash((self.attribute, self.value))

    def __repr__(self):
        return "%s/%s" % (self.attribute, self.value)


def _device_input_capabilities(app):
    """input name -> capability name for the app's device inputs."""
    return {i.name: i.capability for i in app.device_inputs}


def _handler_reachable_methods(app, handler_name):
    """The handler plus every method transitively called from it."""
    reachable = []
    queue = [handler_name]
    seen = set()
    while queue:
        name = queue.pop()
        if name in seen:
            continue
        seen.add(name)
        method = app.method(name)
        if method is None:
            continue
        reachable.append(method)
        for node in method.walk():
            if isinstance(node, ast.Call) and app.method(node.name) is not None:
                queue.append(node.name)
            elif isinstance(node, ast.MethodCall) and app.method(node.name) is not None:
                queue.append(node.name)
    return reachable


def _output_events_of(app, handler_name, device_caps):
    """Output events: device command calls + location mode changes."""
    outputs = []

    def add(descriptor):
        if descriptor not in outputs:
            outputs.append(descriptor)

    for method in _handler_reachable_methods(app, handler_name):
        for node in method.walk():
            if isinstance(node, ast.MethodCall):
                target = _root_name(node.obj)
                if target in device_caps:
                    cap = capability(device_caps[target])
                    command = cap.commands.get(node.name)
                    if command is not None:
                        value = command.value if not command.takes_arg else ANY
                        add(EventDescriptor(command.attribute, value))
                elif target == "location" and node.name == "setMode":
                    add(EventDescriptor("mode", _literal_or_any(node.args)))
            elif isinstance(node, ast.Call):
                if node.name == "setLocationMode":
                    add(EventDescriptor("mode", _literal_or_any(node.args)))
                elif node.name == "sendLocationEvent":
                    add(EventDescriptor("mode", ANY))
                elif node.name == "sendEvent":
                    attr = _named_literal(node, "name")
                    if attr:
                        add(EventDescriptor(attr, _named_literal(node, "value") or ANY))
            elif isinstance(node, ast.Assign):
                target = node.target
                if (isinstance(target, ast.Property) and target.name == "mode"
                        and _root_name(target.obj) == "location"):
                    add(EventDescriptor("mode", ANY))
    return outputs


def _input_events_of(app, handler_name, device_caps):
    """Input events: subscriptions + device state reads + schedules."""
    inputs = []

    def add(descriptor):
        if descriptor not in inputs:
            inputs.append(descriptor)

    for sub in app.subscriptions:
        if sub.handler != handler_name:
            continue
        if sub.source == "app":
            add(EventDescriptor("app", "touch"))
        elif sub.source == "location":
            add(EventDescriptor(sub.attribute or "mode", sub.value or ANY))
        else:
            add(EventDescriptor(sub.attribute, sub.value or ANY))
    for _api, handler, _line in app.schedules:
        if handler == handler_name:
            add(EventDescriptor("time", ANY))
    # device state reads inside the handler (input kind (ii))
    for method in _handler_reachable_methods(app, handler_name):
        for node in method.walk():
            attr = None
            target = None
            if isinstance(node, ast.Property) and node.name.startswith("current"):
                target = _root_name(node.obj)
                attr = node.name[len("current"):]
                attr = attr[:1].lower() + attr[1:]
            elif (isinstance(node, ast.MethodCall)
                    and node.name in ("currentValue", "latestValue")
                    and node.args and isinstance(node.args[0], ast.Literal)):
                target = _root_name(node.obj)
                attr = str(node.args[0].value)
            if attr and target in device_caps:
                cap = capability(device_caps[target])
                if attr in cap.attributes:
                    add(EventDescriptor(attr, ANY))
    return inputs


def _root_name(node):
    while isinstance(node, (ast.Property, ast.Index, ast.MethodCall)):
        node = node.obj
    if isinstance(node, ast.Name):
        return node.id
    return None


def _literal_or_any(args):
    if args and isinstance(args[0], ast.Literal):
        return str(args[0].value)
    return ANY


def _named_literal(call, key):
    for entry in call.named:
        if entry.key == key and isinstance(entry.value, ast.Literal):
            return str(entry.value.value)
    return None


def extract_handler_io(app, handler_name):
    """``(input_events, output_events)`` for one handler of one app."""
    device_caps = _device_input_capabilities(app)
    return (_input_events_of(app, handler_name, device_caps),
            _output_events_of(app, handler_name, device_caps))


def handler_vertices(app):
    """All handlers of an app with their I/O events, in registration order.

    Returns a list of ``(handler_name, inputs, outputs)``.
    """
    vertices = []
    for handler_name in app.handler_names:
        inputs, outputs = extract_handler_io(app, handler_name)
        vertices.append((handler_name, inputs, outputs))
    return vertices
