"""Static event-independence analysis for partial-order-style reduction.

Two external events *commute* when their cascades touch disjoint parts of
the model state: executing them in either order reaches the same state,
and each cascade behaves identically in both orders.  The engine layers
*sleep sets* (:mod:`repro.engine.core`) over this relation: each search
node carries the set of event identities whose exploration is provably
redundant there, so entire commuting suffixes are pruned - not just one
order per adjacent pair - which shrinks the Table-8 state *count* rather
than the per-state cost.  The pairwise :meth:`should_skip` decision
remains for key-protocol callers.

The analysis is derived from the same static facts as the §5 dependency
graph (:mod:`repro.deps.events`): subscriptions route trigger events to
handlers, input bindings bound the devices a handler can read or command.
Footprints are deliberately coarse - reads and writes are merged, a
triggered app contributes *all* of its bound devices - so independence is
under-approximated and the reduction stays conservative:

* every app reachable (transitively, through device/mode triggering) from
  an event contributes its whole footprint;
* apps that fabricate events (``sendEvent``) or read the clock (``now()``
  and friends - reordering changes the timestamps a cascade observes) make
  the event *global*: dependent on everything;
* failure enumeration disables the reduction entirely (the engine guards
  this) since failure scenarios couple otherwise-unrelated actuators.

One caveat is inherent to any partial-order reduction here: a violation
occurring at the joint state of a commuting pair is reported with the
attribution (the "apps related to example") of the explored order only.
The set of violated properties and the per-cascade monitored violations
are preserved; the reduction-soundness suite asserts exactly that.
"""

from repro.groovy import ast

#: platform calls whose results depend on the model clock; reordering two
#: cascades changes the clock value each observes, so apps using them are
#: never commuted past anything
_TIME_APIS = frozenset([
    "now", "eventsSince", "statesSince", "statesBetween", "eventsBetween",
])

_MODE_WRITE_APIS = frozenset(["setLocationMode"])


class IndependenceAnalysis:
    """Per-system footprints of external events plus the skip decision."""

    def __init__(self, system):
        self.system = system
        #: app name -> frozenset of tokens, or None for "global"
        self._app_footprints = {}
        #: app name -> True when the app can change the location mode
        self._mode_writers = set()
        self._event_footprints = {}
        self._skip_cache = {}
        self._label_keys = {}
        self._independent_cache = {}
        self._analyze_apps()

    # ------------------------------------------------------------------
    # event identities
    # ------------------------------------------------------------------

    @staticmethod
    def key(ext):
        """Canonical orderable identity of one external event."""
        if ext.kind == "sensor":
            return ("sensor", ext.device, ext.attribute, str(ext.value))
        if ext.kind == "touch":
            return ("touch", ext.app)
        if ext.kind == "timer":
            return ("timer", ext.app, str(ext.handler))
        if ext.kind == "environment":
            return ("env", str(ext.attribute))
        if ext.kind == "mode":
            return ("mode", str(ext.value))
        return None

    def key_for_label(self, label):
        """The event identity parsed back from a transition label.

        Labels are the engine's only record of how a node was reached;
        they are produced by ``ExternalEvent.label()`` and parse back
        unambiguously as long as no failure-scenario suffix is attached.
        Faulted labels — the §8 ``" [... offline]"`` suffixes and the
        scenario-profile suffixes from :mod:`repro.model.faults`
        (``" [report lost]"``, ``" [delayed]"``, ``" [duplicated]"``,
        ``" [<device> dead]"``, ``" [stale reads]"``) — all carry a
        ``" ["`` marker and parse to ``None``: a faulted transition has
        no static independence entry, so the sleep-set machinery treats
        it as dependent on everything (wake-all).  Belt and braces: the
        engine additionally disables the reduction outright whenever
        failure enumeration or a non-clean scenario profile is active.
        """
        if label in self._label_keys:
            return self._label_keys[label]
        key = self._parse_label(label)
        self._label_keys[label] = key
        return key

    @staticmethod
    def _parse_label(label):
        if " [" in label:
            return None  # failure-scenario suffix: not reducible
        if label.startswith("app/touch(") and label.endswith(")"):
            return ("touch", label[len("app/touch("):-1])
        if label.startswith("timer(") and label.endswith(")"):
            inner = label[len("timer("):-1]
            app, _dot, handler = inner.rpartition(".")
            return ("timer", app, handler)
        if label.startswith("user/mode="):
            return ("mode", label[len("user/mode="):])
        if label.startswith("environment/"):
            return ("env", label[len("environment/"):])
        left, sep, value = label.partition("=")
        device, slash, attribute = left.partition("/")
        if not sep or not slash:
            return None
        return ("sensor", device, attribute, value)

    # ------------------------------------------------------------------
    # the skip decision
    # ------------------------------------------------------------------

    def should_skip(self, prev_key, ext):
        """Whether to skip ``ext`` right after the event ``prev_key``.

        Skips exactly the descending order of a commuting pair, so one
        interleaving of every independent pair survives.
        """
        cur_key = self.key(ext)
        if cur_key is None or prev_key is None or cur_key >= prev_key:
            return False
        pair = (cur_key, prev_key)
        cached = self._skip_cache.get(pair)
        if cached is None:
            cached = self.independent(cur_key, prev_key)
            self._skip_cache[pair] = cached
        return cached

    def independent(self, key_a, key_b):
        """Whether two event identities have disjoint footprints."""
        if key_a == key_b:
            return False
        footprint_a = self.event_footprint(key_a)
        if footprint_a is None:
            return False
        footprint_b = self.event_footprint(key_b)
        if footprint_b is None:
            return False
        return footprint_a.isdisjoint(footprint_b)

    def independent_cached(self, key_a, key_b):
        """Memoized symmetric :meth:`independent` (the sleep-set hot path:
        every inherited sleep-set entry is tested against every chosen
        event, so the same unordered pair recurs constantly)."""
        pair = (key_a, key_b) if key_a <= key_b else (key_b, key_a)
        cached = self._independent_cache.get(pair)
        if cached is None:
            cached = self.independent(key_a, key_b)
            self._independent_cache[pair] = cached
        return cached

    # ------------------------------------------------------------------
    # footprints
    # ------------------------------------------------------------------

    def event_footprint(self, key):
        """Tokens the event's cascade may read or write (None = global)."""
        if key in self._event_footprints:
            return self._event_footprints[key]
        footprint = self._compute_event_footprint(key)
        self._event_footprints[key] = footprint
        return footprint

    def _compute_event_footprint(self, key):
        system = self.system
        kind = key[0]
        tokens = set()
        triggered = []
        if kind == "sensor":
            _kind, device, attribute, _value = key
            tokens.add(("dev", device))
            for sub in system.subscriptions:
                if (sub.source_kind == "device" and sub.device == device
                        and sub.attribute == attribute):
                    triggered.append(sub.app.name)
        elif kind == "touch":
            triggered.append(key[1])
        elif kind == "timer":
            triggered.append(key[1])
        elif kind == "env":
            for sub in system.subscriptions:
                if sub.source_kind == "location" and sub.attribute == key[1]:
                    triggered.append(sub.app.name)
        elif kind == "mode":
            tokens.add(("mode",))
            for sub in system.subscriptions:
                if sub.source_kind == "location":
                    triggered.append(sub.app.name)
        else:
            return None
        for app_name in triggered:
            app_footprint = self._app_footprints.get(app_name)
            if app_footprint is None:
                return None
            tokens |= app_footprint
        return frozenset(tokens)

    # ------------------------------------------------------------------
    # per-app analysis
    # ------------------------------------------------------------------

    def _analyze_apps(self):
        base = {}
        for app in self.system.apps:
            base[app.name] = self._base_footprint(app)
        edges = self._trigger_edges()
        # fixpoint: absorb the footprints of transitively triggered apps
        footprints = dict(base)
        changed = True
        while changed:
            changed = False
            for name in footprints:
                own = footprints[name]
                if own is None:
                    continue
                for child in edges.get(name, ()):
                    other = footprints.get(child)
                    if other is None:
                        footprints[name] = None
                        changed = True
                        break
                    if not other <= own:
                        own = own | other
                        footprints[name] = own
                        changed = True
        self._app_footprints = footprints

    def _base_footprint(self, app):
        """Static tokens of one app, or None when it must stay global."""
        tokens = {("app", app.name)}
        for input_name in app.binding_names():
            for device in app.bound_devices(input_name):
                tokens.add(("dev", device))
        for sub in app.smart_app.subscriptions:
            if sub.source == "location":
                tokens.add(("mode",))
        for node in app.smart_app.program.walk():
            if isinstance(node, ast.Call):
                if node.name in _TIME_APIS:
                    return None
                if node.name == "sendEvent":
                    return None  # fake events route by attribute, any device
                if node.name in _MODE_WRITE_APIS:
                    tokens.add(("mode",))
                    self._mode_writers.add(app.name)
                elif node.name == "sendLocationEvent":
                    if self._is_mode_location_event(node):
                        tokens.add(("mode",))
                        self._mode_writers.add(app.name)
                    else:
                        return None
            elif isinstance(node, ast.MethodCall):
                if node.name in _TIME_APIS:
                    return None
                if (node.name == "setMode"
                        and isinstance(node.obj, ast.Name)
                        and node.obj.id == "location"):
                    tokens.add(("mode",))
                    self._mode_writers.add(app.name)
            elif isinstance(node, ast.New):
                if node.type_name == "Date":
                    return None
            elif isinstance(node, ast.Name):
                if node.id == "location":
                    tokens.add(("mode",))
            elif isinstance(node, ast.Assign):
                target = node.target
                if (isinstance(target, ast.Property) and target.name == "mode"
                        and isinstance(target.obj, ast.Name)
                        and target.obj.id == "location"):
                    tokens.add(("mode",))
                    self._mode_writers.add(app.name)
        return tokens

    @staticmethod
    def _is_mode_location_event(node):
        for entry in node.named:
            if entry.key == "name" and isinstance(entry.value, ast.Literal):
                return str(entry.value.value) == "mode"
        if node.args and isinstance(node.args[0], ast.Literal):
            return str(node.args[0].value) == "mode"
        return False

    def _trigger_edges(self):
        """app -> apps its cascade may transitively hand events to."""
        system = self.system
        device_subscribers = {}
        location_subscribers = set()
        for sub in system.subscriptions:
            if sub.source_kind == "device":
                device_subscribers.setdefault(sub.device, set()).add(
                    sub.app.name)
            elif sub.source_kind == "location":
                location_subscribers.add(sub.app.name)
        edges = {}
        for app in system.apps:
            targets = set()
            for input_name in app.binding_names():
                for device in app.bound_devices(input_name):
                    targets |= device_subscribers.get(device, set())
            if app.name in self._mode_writers:
                targets |= location_subscribers
            targets.discard(app.name)
            edges[app.name] = targets
        return edges
