"""App Dependency Analyzer (§5).

Builds the dependency graph over event handlers, merges strongly connected
components, computes per-leaf *related sets*, merges sets with conflicting
outputs, removes redundant subsets - producing the groups of handlers the
model checker analyzes jointly (and the Table 7a scale ratios).
"""

from repro.deps.events import (
    ANY,
    EventDescriptor,
    extract_handler_io,
    handler_vertices,
)
from repro.deps.graph import DependencyGraph, Vertex
from repro.deps.independence import IndependenceAnalysis
from repro.deps.related import (
    RelatedSetAnalysis,
    analyze_apps,
    compute_related_sets,
    scale_ratio,
)

__all__ = [
    "ANY",
    "EventDescriptor",
    "extract_handler_io",
    "handler_vertices",
    "DependencyGraph",
    "IndependenceAnalysis",
    "Vertex",
    "RelatedSetAnalysis",
    "analyze_apps",
    "compute_related_sets",
    "scale_ratio",
]
