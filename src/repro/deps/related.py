"""Related-set computation (§5).

"The initial related set of a leaf vertex v includes all of its ancestors
and v itself. ...  two vertices u and v may have common output events but
the types of these events could be ... conflicting.  For example, nodes 0
and 1 have conflicting output events viz., switch/off and switch/on.  In
such cases, the related sets to which u and v belong, must be merged ...
if a related set i is a subset of a bigger related set j, the model checker
automatically verifies i when j is verified; thus, there is no need to
re-verify i."
"""

from repro.deps.events import handler_vertices
from repro.deps.graph import DependencyGraph


class RelatedSetAnalysis:
    """The full §5 pipeline output for one group of apps."""

    def __init__(self, graph, merged_graph, related_sets):
        #: the raw dependency graph (one vertex per handler)
        self.graph = graph
        #: after SCC merging
        self.merged_graph = merged_graph
        #: final related sets: list of frozensets of merged-vertex ids
        self.related_sets = related_sets

    @property
    def original_size(self):
        """Total number of event handlers (Table 7a 'Original Size')."""
        return sum(len(v.members) for v in self.graph.vertices)

    @property
    def new_size(self):
        """Handlers in the largest related set (Table 7a 'New Size')."""
        if not self.related_sets:
            return 0
        return max(self._set_handler_count(s) for s in self.related_sets)

    def _set_handler_count(self, related_set):
        return sum(len(self.merged_graph.vertices[vid].members)
                   for vid in related_set)

    @property
    def scale_ratio(self):
        """Original / new size (Table 7a 'Scale Ratio')."""
        new = self.new_size
        if new == 0:
            return 1.0
        return self.original_size / float(new)

    def apps_of_set(self, related_set):
        """App names participating in one related set."""
        apps = set()
        for vid in related_set:
            apps.update(self.merged_graph.vertices[vid].apps)
        return sorted(apps)

    def app_groups(self):
        """App-name groups to verify jointly, one per related set."""
        return [self.apps_of_set(s) for s in self.related_sets]

    def describe(self):
        lines = ["DependencyGraph: %d handlers, %d edges"
                 % (self.original_size, self.graph.edge_count())]
        for index, related_set in enumerate(self.related_sets):
            vertices = sorted(related_set)
            members = []
            for vid in vertices:
                members.extend("%s.%s" % (a, h)
                               for a, h in self.merged_graph.vertices[vid].members)
            lines.append("  set %d: vertices %s (%s)"
                         % (index + 1, vertices, ", ".join(members)))
        lines.append("scale ratio: %.1f" % self.scale_ratio)
        return "\n".join(lines)


def build_graph(apps):
    """One vertex per (app, handler); edges on I/O overlap."""
    graph = DependencyGraph()
    for app in apps:
        for handler_name, inputs, outputs in handler_vertices(app):
            graph.add_vertex([(app.name, handler_name)], inputs, outputs)
    return graph.build_edges()


def compute_related_sets(graph):
    """§5's related-set pipeline on a built dependency graph.

    Returns ``(merged_graph, [frozenset(vertex ids)])``.
    """
    merged = graph.merge_sccs()

    def related_of(vertex_id):
        """Ancestors + the vertex itself (the paper's per-vertex related set)."""
        return frozenset(merged.ancestors(vertex_id) | {vertex_id})

    # initial related sets: one per leaf (other vertices' sets are subsets
    # of some leaf's set, §5)
    sets = [related_of(leaf.id) for leaf in merged.leaves()]

    # conflict merging: for each pair of vertices with conflicting outputs,
    # the related sets of the two vertices must be verified together (the
    # paper's Table 3b: one merged set per conflicting pair).  Checking this
    # examines O(E^2) output-event pairs (§5).
    vertices = merged.vertices
    for i, u in enumerate(vertices):
        for v in vertices[i + 1:]:
            if _outputs_conflict(u, v):
                sets.append(related_of(u.id) | related_of(v.id))

    # subset reduction: drop sets covered by a bigger set
    final = []
    candidates = sorted(set(sets), key=lambda s: (len(s), sorted(s)))
    for candidate in candidates:
        if any(candidate < other for other in candidates if other != candidate):
            continue
        final.append(candidate)
    final.sort(key=lambda s: sorted(s))
    return merged, final


def _outputs_conflict(u, v):
    return any(a.conflicts(b) for a in u.outputs for b in v.outputs)


def analyze_apps(apps):
    """Full pipeline: apps -> :class:`RelatedSetAnalysis`."""
    graph = build_graph(apps)
    merged, related = compute_related_sets(graph)
    return RelatedSetAnalysis(graph, merged, related)


def scale_ratio(apps):
    """Table 7a's metric for one group of apps."""
    return analyze_apps(apps).scale_ratio
