"""The dependency graph over event handlers (§5).

"Each event handler is denoted by a vertex in the DG.  An edge from a
vertex u to a vertex v is added if the output events of u overlap with the
input events of v ...  The vertices in a strongly connected component are
merged into a composite vertex (a union of input and output events).  A
leaf vertex does not have any child."
"""


class Vertex:
    """One vertex: an event handler (or a merged SCC of handlers).

    ``members`` lists ``(app_name, handler_name)`` pairs (more than one
    after SCC merging).
    """

    __slots__ = ("id", "members", "inputs", "outputs")

    def __init__(self, vertex_id, members, inputs, outputs):
        self.id = vertex_id
        self.members = list(members)
        self.inputs = list(inputs)
        self.outputs = list(outputs)

    @property
    def apps(self):
        return sorted({app for app, _handler in self.members})

    def __repr__(self):
        return "Vertex(%d, %s)" % (self.id, self.members)


class DependencyGraph:
    """Directed dependency graph with SCC merging."""

    def __init__(self):
        self.vertices = []
        #: adjacency: vertex id -> set of child vertex ids
        self.children = {}
        self.parents = {}

    # -- construction -----------------------------------------------------------

    def add_vertex(self, members, inputs, outputs):
        vertex = Vertex(len(self.vertices), members, inputs, outputs)
        self.vertices.append(vertex)
        self.children[vertex.id] = set()
        self.parents[vertex.id] = set()
        return vertex

    def build_edges(self):
        """Add u -> v whenever outputs(u) overlap inputs(v)."""
        for u in self.vertices:
            for v in self.vertices:
                if u.id == v.id:
                    continue
                if self._io_overlap(u.outputs, v.inputs):
                    self.children[u.id].add(v.id)
                    self.parents[v.id].add(u.id)
        return self

    @staticmethod
    def _io_overlap(outputs, inputs):
        return any(out.overlaps(inp) for out in outputs for inp in inputs)

    # -- queries ---------------------------------------------------------------

    def leaves(self):
        """Vertices without children."""
        return [v for v in self.vertices if not self.children[v.id]]

    def ancestors(self, vertex_id):
        """All (transitive) ancestors of a vertex."""
        seen = set()
        queue = list(self.parents[vertex_id])
        while queue:
            current = queue.pop()
            if current in seen:
                continue
            seen.add(current)
            queue.extend(self.parents[current])
        return seen

    def edge_count(self):
        return sum(len(kids) for kids in self.children.values())

    # -- SCC merging -------------------------------------------------------------

    def merge_sccs(self):
        """Merge each non-trivial SCC into a composite vertex.

        Returns a *new* graph whose vertices are the components (Tarjan).
        """
        components = self._tarjan()
        merged = DependencyGraph()
        component_of = {}
        for component in components:
            members, inputs, outputs = [], [], []
            for vid in component:
                vertex = self.vertices[vid]
                members.extend(vertex.members)
                for event in vertex.inputs:
                    if event not in inputs:
                        inputs.append(event)
                for event in vertex.outputs:
                    if event not in outputs:
                        outputs.append(event)
            new_vertex = merged.add_vertex(members, inputs, outputs)
            for vid in component:
                component_of[vid] = new_vertex.id
        for u_id, kids in self.children.items():
            for v_id in kids:
                cu, cv = component_of[u_id], component_of[v_id]
                if cu != cv:
                    merged.children[cu].add(cv)
                    merged.parents[cv].add(cu)
        return merged

    def _tarjan(self):
        """Tarjan's SCC algorithm, iterative.  Components in discovery order."""
        index_counter = [0]
        indexes, lowlinks = {}, {}
        on_stack = set()
        stack = []
        components = []

        for root in range(len(self.vertices)):
            if root in indexes:
                continue
            work = [(root, iter(sorted(self.children[root])))]
            indexes[root] = lowlinks[root] = index_counter[0]
            index_counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, children_iter = work[-1]
                advanced = False
                for child in children_iter:
                    if child not in indexes:
                        indexes[child] = lowlinks[child] = index_counter[0]
                        index_counter[0] += 1
                        stack.append(child)
                        on_stack.add(child)
                        work.append((child, iter(sorted(self.children[child]))))
                        advanced = True
                        break
                    if child in on_stack:
                        lowlinks[node] = min(lowlinks[node], indexes[child])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
                if lowlinks[node] == indexes[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(sorted(component))
        # keep deterministic order: by smallest original vertex id
        components.sort(key=lambda c: c[0])
        return components

    def __repr__(self):
        return "DependencyGraph(vertices=%d, edges=%d)" % (
            len(self.vertices), self.edge_count())
