"""Spin-style violation-log rendering (Figure 7).

Spin prints a counterexample as one line per executed Promela statement::

    SmartThings0.prom:2690 (state 295)  [generatedEvent.evtType = notpresent]

followed by the failed never-claim assertion.  IotSan filters this log and
walks users through it (§8's example).  This module renders our explorer's
:class:`~repro.checker.violations.Counterexample` objects in the same
format, so the artifact users see matches the paper's Figure 7:

* every trace step becomes a Promela-ish statement line;
* line numbers are stable per distinct statement text (the way statements
  in a generated ``.prom`` file have fixed positions);
* state numbers count executed statements, like Spin's depth counter;
* the log ends with ``spin: _spin_nvr.tmp ... assertion violated`` and the
  text of the failed assertion, derived from the violated property.

:func:`render_violation_log` is the one-call entry point.
"""

import re

_MODEL_FILE = "SmartThings0.prom"

#: first synthetic source line; statements get lines from here upward, which
#: places them in the 1800-2800 band the paper's figure shows
_LINE_BASE = 1800
_LINE_STEP = 7


class SpinLogRenderer:
    """Renders counterexamples as Spin-style violation logs."""

    def __init__(self, system, model_file=_MODEL_FILE):
        self.system = system
        self.model_file = model_file
        self._lines = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def render(self, counterexample, filtered=True):
        """The full violation log for one counterexample.

        ``filtered`` drops bookkeeping steps (logs, schedule notes) the way
        the paper presents a "(filtered) violation log"; pass ``False`` for
        the raw statement-per-step dump.
        """
        lines = []
        state_number = 200  # Spin's counters start mid-run after init
        for label, steps in counterexample.path:
            statement = self._external_statement(label)
            state_number += 95
            lines.append(self._format(statement, state_number))
            for step in steps:
                rendered = self._statement_for(step)
                if rendered is None:
                    continue
                if filtered and step.kind == "log":
                    continue
                state_number += 37
                lines.append(self._format(rendered, state_number))
        lines.extend(self._assertion_footer(counterexample.violation))
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # statement synthesis
    # ------------------------------------------------------------------

    def _external_statement(self, label):
        """Algorithm 1 line 2: the generated physical event."""
        base = label.split(" [")[0]  # strip failure-scenario suffix
        match = re.match(r"(\S+)/(\S+)=(.*)$", base)
        if match:
            value = _promela_symbol(match.group(3))
            return "generatedEvent.evtType = %s" % value
        if base.startswith("app/touch"):
            return "generatedEvent.evtType = appTouch"
        if base.startswith("timer"):
            return "generatedEvent.evtType = timerFired"
        return "generatedEvent.evtType = %s" % _promela_symbol(base)

    def _statement_for(self, step):
        handlers = {
            "state": self._render_state,
            "mode": self._render_mode,
            "notify": self._render_notify,
            "handler": self._render_handler,
            "command": self._render_command,
            "message": self._render_message,
            "failure": self._render_failure,
            "external": lambda step: None,  # already rendered from the label
            "log": self._render_log,
            "violation": lambda step: None,
        }
        renderer = handlers.get(step.kind)
        if renderer is None:
            return None
        return renderer(step)

    def _render_state(self, step):
        # "frontDoorLock.lock = unlocked"
        match = re.match(r"(\S+)\.(\S+) = (.*)$", step.text)
        if not match:
            return step.text
        device, attribute, value = match.groups()
        array = self._device_array(device)
        return "g_%s.element[%s.gArrIndex].current%s = %s" % (
            array, _identifier(device), _camel(attribute),
            _promela_symbol(value))

    def _render_mode(self, step):
        match = re.match(r"location\.mode = (.*)$", step.text)
        if match:
            return "location.mode = %s" % _promela_symbol(match.group(1))
        return step.text

    def _render_notify(self, step):
        # "alicePresence/presence=not present" or "location/mode=Away"
        match = re.match(r"(\S+)/(\S+)=(.*)$", step.text)
        if not match:
            return "dispatch_event(%s)" % step.text
        source, _attribute, _value = match.groups()
        if source == "location":
            return "location.subNotifiers[index0] = " \
                   "location.subNotifiers[index0] + 1"
        array = self._device_array(source)
        return ("g_%s.element[%s.gArrIndex].subNotifiers[index2] = "
                "g_%s.element[%s.gArrIndex].subNotifiers[index2] + 1"
                % (array, _identifier(source), array, _identifier(source)))

    def _render_handler(self, step):
        # "Unlock Door.modeChangeHandler(location/mode=Away)"
        match = re.match(r"(.+?)\.(\w+)\((.*)\)$", step.text)
        if not match:
            return step.text
        app, handler, event = match.groups()
        app_id = _identifier(app)
        if event.startswith("location/"):
            return "((location.subNotifiers[%s_location] > 0))" % app_id
        source = event.split("/", 1)[0]
        array = self._device_array(source)
        return ("((g_%s.element[%s_%s.element[0].gArrIndex]."
                "subNotifiers[%s] > 0))"
                % (array, app_id, handler, "eventCountIndex"))

    def _render_command(self, step):
        # "frontDoorLock.unlock()"
        match = re.match(r"(\S+)\.(\w+)\((.*)\)$", step.text)
        if not match:
            return step.text
        _device, command, _args = match.groups()
        return "ST_Command.evtType = %s" % _promela_symbol(command)

    def _render_message(self, step):
        return "ST_Message: %s" % step.text

    def _render_failure(self, step):
        return "deviceOnline = 0  /* %s */" % step.text

    def _render_log(self, step):
        return "printf(%r)" % step.text

    # ------------------------------------------------------------------
    # layout helpers
    # ------------------------------------------------------------------

    def _device_array(self, device_name):
        """Spin artifact array name for a device: its type, Arr-suffixed."""
        instance = self.system.devices.get(device_name)
        if instance is None:
            return "STDeviceArr"
        return "ST%sArr" % _camel(instance.spec.type_name)

    def _line_for(self, statement):
        """Stable synthetic source line per distinct statement."""
        if statement not in self._lines:
            self._lines[statement] = _LINE_BASE + _LINE_STEP * len(self._lines)
        return self._lines[statement]

    def _format(self, statement, state_number):
        return "%s:%d (state %d) [%s]" % (
            self.model_file, self._line_for(statement), state_number,
            statement)

    def _assertion_footer(self, violation):
        prop = violation.property
        assertion = self._assertion_text(prop)
        return [
            "spin: _spin_nvr.tmp:3, Error: assertion violated",
            "spin: text of failed assertion: assert(!(!(%s)))" % assertion,
            "/* %s: %s */" % (prop.id, violation.message),
        ]

    def _assertion_text(self, prop):
        if prop.ltl and prop.ltl.startswith("[]"):
            body = prop.ltl[2:].strip()
            return _promela_identifierize(body)
        return _promela_identifierize(prop.name)


def render_violation_log(system, counterexample, filtered=True):
    """Render one counterexample as a Fig-7-style Spin violation log."""
    return SpinLogRenderer(system).render(counterexample, filtered=filtered)


def render_result_logs(system, result, limit=None):
    """Render every counterexample of an exploration result.

    Returns a list of (property id, log text); ``limit`` bounds the count.
    """
    renderer = SpinLogRenderer(system)
    logs = []
    for counterexample in result.counterexamples.values():
        logs.append((counterexample.violation.property.id,
                     renderer.render(counterexample)))
        if limit is not None and len(logs) >= limit:
            break
    return logs


# ---------------------------------------------------------------------------
# token helpers
# ---------------------------------------------------------------------------


def _identifier(name):
    """CamelCase identifier from an app/device display name."""
    parts = re.split(r"[^A-Za-z0-9]+", name)
    if not parts:
        return name
    head = parts[0][:1].lower() + parts[0][1:] if parts[0] else ""
    return head + "".join(p[:1].upper() + p[1:] for p in parts[1:] if p)


def _camel(name):
    parts = re.split(r"[^A-Za-z0-9]+", name)
    return "".join(p[:1].upper() + p[1:] for p in parts if p)


def _promela_symbol(value):
    """A Promela mtype-like symbol for an event value ("not present" ->
    ``notpresent``, matching the figure)."""
    text = str(value)
    symbol = re.sub(r"[^A-Za-z0-9]+", "", text)
    return symbol or "nil"


def _promela_identifierize(text):
    """Squash free text into something that reads like a C expression."""
    return re.sub(r"\s+", " ", text).strip()
