"""Compatibility shim over :mod:`repro.engine`.

The explorer grew into the pluggable exploration engine
(:mod:`repro.engine`): frontier strategies, visited-store protocol,
incremental fingerprints and parallel batch verification.  This module
keeps the historical import surface alive - ``Explorer``,
``ExplorerOptions``, ``ExplorationResult`` and :func:`verify` behave
exactly as before - so existing call sites and scripts keep working.
"""

from repro.checker.visited import BitStateTable, ExactVisitedSet
from repro.engine.core import ExplorationEngine as Explorer
from repro.engine.core import verify
from repro.engine.options import CONCURRENT, SEQUENTIAL
from repro.engine.options import EngineOptions as ExplorerOptions
from repro.engine.result import ExplorationResult

__all__ = [
    "BitStateTable",
    "CONCURRENT",
    "ExactVisitedSet",
    "SEQUENTIAL",
    "ExplorationResult",
    "Explorer",
    "ExplorerOptions",
    "verify",
]
