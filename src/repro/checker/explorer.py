"""The explorer: bounded DFS over external-event permutations.

"The model checker enumerates all possible permutations of the input
physical events up to a maximum number of events per user's configuration
to exhaustively verify the system." (§8, Algorithm 1.)

Used as a *falsifier* (§2.3): the search records a counterexample per
violated property and keeps exploring until the bounded state space is
exhausted or a limit trips.  Visited states are pruned through either an
exact hash set or the BITSTATE bitfield.
"""

import time

from repro.checker.monitor import SafetyMonitor
from repro.checker.violations import Counterexample
from repro.checker.visited import BitStateTable, ExactVisitedSet

SEQUENTIAL = "sequential"
CONCURRENT = "concurrent"


class ExplorerOptions:
    """Tunables for one exploration run."""

    def __init__(self, max_events=3, mode=SEQUENTIAL, visited="exact",
                 bitstate_bits=23, max_states=200000, max_transitions=None,
                 time_limit=None, stop_on_first=False):
        self.max_events = max_events
        self.mode = mode
        self.visited = visited
        self.bitstate_bits = bitstate_bits
        self.max_states = max_states
        self.max_transitions = max_transitions
        self.time_limit = time_limit
        self.stop_on_first = stop_on_first

    def make_visited(self):
        if self.visited == "bitstate":
            return BitStateTable(bits_log2=self.bitstate_bits)
        return ExactVisitedSet()


class ExplorationResult:
    """Outcome of one run: violations + statistics."""

    def __init__(self):
        #: dedup key -> Counterexample (first found per distinct violation)
        self.counterexamples = {}
        self.states_explored = 0
        self.transitions = 0
        self.elapsed = 0.0
        self.truncated = False
        self.truncated_reason = None

    @property
    def violations(self):
        return [ce.violation for ce in self.counterexamples.values()]

    @property
    def violated_property_ids(self):
        return sorted({v.property.id for v in self.violations})

    def counterexample_for(self, property_id):
        """The first counterexample recorded for a property id."""
        for ce in self.counterexamples.values():
            if ce.violation.property.id == property_id:
                return ce
        return None

    @property
    def has_violations(self):
        return bool(self.counterexamples)

    def summary(self):
        lines = ["%d distinct violation(s) of %d property(ies); "
                 "%d states, %d transitions, %.2fs%s" % (
                     len(self.counterexamples),
                     len(self.violated_property_ids),
                     self.states_explored, self.transitions, self.elapsed,
                     " (truncated: %s)" % self.truncated_reason
                     if self.truncated else "")]
        for ce in self.counterexamples.values():
            lines.append("  %s: %s" % (ce.violation.property.id,
                                       ce.violation.message))
        return "\n".join(lines)

    def __repr__(self):
        return "ExplorationResult(violations=%d, states=%d)" % (
            len(self.counterexamples), self.states_explored)


class _Node:
    """A search node with parent links for counterexample reconstruction."""

    __slots__ = ("state", "depth", "parent", "label", "steps")

    def __init__(self, state, depth, parent=None, label=None, steps=()):
        self.state = state
        self.depth = depth
        self.parent = parent
        self.label = label
        self.steps = steps

    def path(self):
        chain = []
        node = self
        while node.parent is not None:
            chain.append((node.label, list(node.steps)))
            node = node.parent
        chain.reverse()
        return chain


class Explorer:
    """Runs the bounded search on one :class:`~repro.model.system.IoTSystem`."""

    def __init__(self, system, properties, options=None):
        self.system = system
        self.properties = list(properties)
        self.options = options or ExplorerOptions()

    def _monitor_factory(self):
        return SafetyMonitor(self.system, self.properties)

    def run(self):
        """Explore; returns an :class:`ExplorationResult`."""
        options = self.options
        result = ExplorationResult()
        started = time.monotonic()
        visited = options.make_visited()

        root = _Node(self.system.initial_state(), 0)
        visited.seen_before(root.state.key(), 0)
        result.states_explored = 1
        stack = [root]

        while stack:
            if self._limits_hit(result, started):
                break
            node = stack.pop()
            for transition in self._transitions_from(node):
                label, new_state, consumed, violations, steps = transition
                result.transitions += 1
                depth = node.depth + (1 if consumed else 0)
                child = _Node(new_state, depth, parent=node, label=label,
                              steps=steps)
                if violations:
                    self._record(result, child, violations)
                    if options.stop_on_first:
                        result.elapsed = time.monotonic() - started
                        return result
                if depth > options.max_events:
                    continue
                if not visited.seen_before(new_state.key(), depth):
                    result.states_explored += 1
                    if depth < options.max_events or new_state.pending:
                        stack.append(child)
                if self._limits_hit(result, started):
                    break

        result.elapsed = time.monotonic() - started
        return result

    def _transitions_from(self, node):
        if self.options.mode == CONCURRENT:
            externals_left = self.options.max_events - node.depth
            return self.system.transitions_concurrent(
                node.state, self._monitor_factory, externals_left)
        if node.depth >= self.options.max_events:
            return []
        return self.system.transitions(node.state, self._monitor_factory)

    def _record(self, result, node, violations):
        path = node.path()
        for violation in violations:
            refined = self._role_actors(violation, path)
            if refined:
                violation.apps = refined
            elif not violation.apps:
                # fall back to every app that acted along the path
                violation.apps = _path_actors(path)
            key = violation.dedup_key()
            if key not in result.counterexamples:
                result.counterexamples[key] = Counterexample(violation, path)

    def _role_actors(self, violation, path):
        """For invariant violations: the apps that commanded the property's
        role devices anywhere along the violating run (Table 5/9's "apps
        related to example")."""
        roles = getattr(violation.property, "roles", ())
        if not roles:
            return ()
        role_devices = set()
        for role in roles:
            for name in self.system.role_list(role):
                if isinstance(name, str) and name in self.system.devices:
                    role_devices.add(name)
        if not role_devices:
            return ()
        actors = []
        for _label, steps in path:
            for step in steps:
                if step.kind not in ("command", "mode") or not step.app:
                    continue
                if step.kind == "command":
                    device = step.text.split(".", 1)[0]
                    if device not in role_devices:
                        continue
                if step.app not in actors:
                    actors.append(step.app)
        return tuple(actors)

    def _limits_hit(self, result, started):
        options = self.options
        if options.max_states and result.states_explored >= options.max_states:
            result.truncated = True
            result.truncated_reason = "max_states"
            return True
        if (options.max_transitions
                and result.transitions >= options.max_transitions):
            result.truncated = True
            result.truncated_reason = "max_transitions"
            return True
        if options.time_limit and time.monotonic() - started > options.time_limit:
            result.truncated = True
            result.truncated_reason = "time_limit"
            return True
        return False


def _path_actors(path):
    """Apps that issued commands or mode changes along a violating run."""
    actors = []
    for _label, steps in path:
        for step in steps:
            if step.kind in ("command", "mode") and step.app:
                if step.app not in actors:
                    actors.append(step.app)
    return tuple(actors)


def verify(system, properties, **option_kwargs):
    """Convenience: build options, run, return the result."""
    return Explorer(system, properties,
                    ExplorerOptions(**option_kwargs)).run()
