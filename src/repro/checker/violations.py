"""Violation, trace-step and counterexample records."""


class TraceStep:
    """One line of a cascade trace (maps to one Fig-7 log line).

    ``kind`` is one of ``external``, ``notify``, ``handler``, ``command``,
    ``state``, ``mode``, ``message``, ``failure``, ``log``, ``violation``.
    """

    __slots__ = ("kind", "text", "app", "line")

    def __init__(self, kind, text, app=None, line=None):
        self.kind = kind
        self.text = text
        self.app = app
        self.line = line

    def __repr__(self):
        return "TraceStep(%s: %s)" % (self.kind, self.text)


class Violation:
    """A detected violation of one safety property."""

    __slots__ = ("property", "message", "apps", "step_index")

    def __init__(self, prop, message, apps=(), step_index=None):
        self.property = prop
        self.message = message
        self.apps = tuple(apps)
        self.step_index = step_index

    @property
    def property_id(self):
        return self.property.id

    def dedup_key(self):
        """Violations with the same key describe the same flaw.

        The app combination is part of the identity: Table 5 and Table 9
        list one violation per (property, interacting apps) pair."""
        return (self.property.id, self.message, tuple(sorted(set(self.apps))))

    def clone(self):
        """An independent copy (the engine refines ``apps`` per path, so
        cached violations are replayed as clones, never shared)."""
        return Violation(self.property, self.message, apps=self.apps,
                         step_index=self.step_index)

    def __repr__(self):
        return "Violation(%s: %s)" % (self.property.id, self.message)


class Counterexample:
    """A violating run: the external-event path plus per-cascade steps."""

    def __init__(self, violation, path):
        #: the triggering violation
        self.violation = violation
        #: list of (external event label, [TraceStep, ...]) per depth level
        self.path = list(path)

    @property
    def depth(self):
        return len(self.path)

    def event_labels(self):
        return [label for label, _steps in self.path]

    def all_steps(self):
        steps = []
        for _label, cascade_steps in self.path:
            steps.extend(cascade_steps)
        return steps

    def describe(self):
        lines = ["Counterexample for %s (%s):" % (
            self.violation.property.id, self.violation.property.name)]
        for index, (label, steps) in enumerate(self.path):
            lines.append("  %d. external event %s" % (index + 1, label))
            for step in steps:
                lines.append("       [%s] %s" % (step.kind, step.text))
        lines.append("  => %s" % (self.violation.message,))
        return "\n".join(lines)

    def __repr__(self):
        return "Counterexample(%s, depth=%d)" % (
            self.violation.property.id, self.depth)
