"""Violation, trace-step and counterexample records.

Everything here round-trips through JSON (``to_dict``/``from_dict``) so
stored results replay byte-identically: a deserialized violation resolves
its property back to the live catalog object when the catalog still
carries an identical definition, and degrades to a detached
:class:`~repro.properties.base.SafetyProperty` carrying the serialized
signature otherwise (old results stay renderable across catalog edits).
"""


def resolve_property(data):
    """A property object for a serialized signature.

    Prefers the catalog instance (predicates and roles stay usable) when
    id, name and LTL are unchanged; otherwise reconstructs a detached
    property from the stored fields.
    """
    from repro.properties import build_properties
    from repro.properties.base import SafetyProperty

    prop_id = data["id"]
    try:
        matches = build_properties([prop_id])
    except KeyError:
        matches = []
    for prop in matches:
        if (prop.id == prop_id and prop.name == data.get("name")
                and prop.ltl == data.get("ltl")):
            return prop
    prop = SafetyProperty(prop_id, data.get("name", prop_id),
                          data.get("category"), data.get("kind"),
                          data.get("description", ""), ltl=data.get("ltl"))
    prop.roles = tuple(data.get("roles", ()))
    return prop


class TraceStep:
    """One line of a cascade trace (maps to one Fig-7 log line).

    ``kind`` is one of ``external``, ``notify``, ``handler``, ``command``,
    ``state``, ``mode``, ``message``, ``failure``, ``log``, ``violation``.
    """

    __slots__ = ("kind", "text", "app", "line")

    def __init__(self, kind, text, app=None, line=None):
        self.kind = kind
        self.text = text
        self.app = app
        self.line = line

    def to_dict(self):
        data = {"kind": self.kind, "text": self.text}
        if self.app is not None:
            data["app"] = self.app
        if self.line is not None:
            data["line"] = self.line
        return data

    @classmethod
    def from_dict(cls, data):
        return cls(data["kind"], data["text"], app=data.get("app"),
                   line=data.get("line"))

    def __repr__(self):
        return "TraceStep(%s: %s)" % (self.kind, self.text)


class Violation:
    """A detected violation of one safety property."""

    __slots__ = ("property", "message", "apps", "step_index")

    def __init__(self, prop, message, apps=(), step_index=None):
        self.property = prop
        self.message = message
        self.apps = tuple(apps)
        self.step_index = step_index

    @property
    def property_id(self):
        return self.property.id

    def dedup_key(self):
        """Violations with the same key describe the same flaw.

        The app combination is part of the identity: Table 5 and Table 9
        list one violation per (property, interacting apps) pair."""
        return (self.property.id, self.message, tuple(sorted(set(self.apps))))

    def clone(self):
        """An independent copy (the engine refines ``apps`` per path, so
        cached violations are replayed as clones, never shared)."""
        return Violation(self.property, self.message, apps=self.apps,
                         step_index=self.step_index)

    def to_dict(self):
        prop = self.property
        data = {
            "property": {
                "id": prop.id,
                "name": prop.name,
                "category": getattr(prop, "category", None),
                "kind": getattr(prop, "kind", None),
                "description": getattr(prop, "description", ""),
                "ltl": getattr(prop, "ltl", None),
                "roles": list(getattr(prop, "roles", ())),
            },
            "message": self.message,
            "apps": list(self.apps),
        }
        if self.step_index is not None:
            data["step_index"] = self.step_index
        return data

    @classmethod
    def from_dict(cls, data):
        return cls(resolve_property(data["property"]), data["message"],
                   apps=data.get("apps", ()),
                   step_index=data.get("step_index"))

    def __repr__(self):
        return "Violation(%s: %s)" % (self.property.id, self.message)


class Counterexample:
    """A violating run: the external-event path plus per-cascade steps."""

    def __init__(self, violation, path):
        #: the triggering violation
        self.violation = violation
        #: list of (external event label, [TraceStep, ...]) per depth level
        self.path = list(path)

    @property
    def depth(self):
        return len(self.path)

    def event_labels(self):
        return [label for label, _steps in self.path]

    def all_steps(self):
        steps = []
        for _label, cascade_steps in self.path:
            steps.extend(cascade_steps)
        return steps

    def to_dict(self):
        return {
            "violation": self.violation.to_dict(),
            "path": [{"label": label,
                      "steps": [step.to_dict() for step in steps]}
                     for label, steps in self.path],
        }

    @classmethod
    def from_dict(cls, data):
        path = [(level["label"],
                 [TraceStep.from_dict(s) for s in level.get("steps", ())])
                for level in data.get("path", ())]
        return cls(Violation.from_dict(data["violation"]), path)

    def describe(self):
        lines = ["Counterexample for %s (%s):" % (
            self.violation.property.id, self.violation.property.name)]
        for index, (label, steps) in enumerate(self.path):
            lines.append("  %d. external event %s" % (index + 1, label))
            for step in steps:
                lines.append("       [%s] %s" % (step.kind, step.text))
        lines.append("  => %s" % (self.violation.message,))
        return "\n".join(lines)

    def __repr__(self):
        return "Counterexample(%s, depth=%d)" % (
            self.violation.property.id, self.depth)
