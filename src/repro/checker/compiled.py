"""Compiled property evaluation: partition once, memoize invariant verdicts.

A :class:`~repro.checker.monitor.SafetyMonitor` lives for exactly one
transition, but the work its constructor and invariant sweep do is almost
entirely a function of the *system*, not of the transition:

* partitioning the property list into monitored kinds and applicable
  invariants re-runs ``applicable()`` (role lookups) per transition;
* evaluating the invariants on the quiescent state re-resolves every role
  device handle and threshold per transition, even though most transitions
  land on a physical state that was already checked.

:class:`CompiledProperties` is built once per exploration engine and shared
by every monitor the engine creates.  It partitions the properties a single
time and memoizes invariant verdicts keyed by the state's
:meth:`~repro.model.state.ModelState.physical_key` - the projection
(device attributes + location mode) that invariant predicates read.  The
memo carries the same ~2^-64 per-pair hash-collision caveat as the
fingerprint visited store; results are bit-identical in practice and the
exact evaluation path remains available by constructing monitors without a
compiled set.
"""

from repro.properties.base import KIND_INVARIANT


class CompiledProperties:
    """Per-system compiled property set shared across cascades.

    ``memoize=False`` keeps the shared partition but evaluates every
    invariant exactly on every quiescent state - the engine selects this
    for the ``exact`` visited store, whose contract is "no hash-collision
    shortcuts anywhere".
    """

    __slots__ = ("system", "invariants", "by_kind", "memoize", "_verdicts",
                 "memo_hits", "memo_misses")

    def __init__(self, system, properties, memoize=True):
        self.system = system
        self.memoize = memoize
        self.invariants = []
        self.by_kind = {}
        for prop in properties:
            if not prop.applicable(system):
                continue
            if prop.kind == KIND_INVARIANT:
                self.invariants.append(prop)
            else:
                self.by_kind[prop.kind] = prop
        #: physical_key -> tuple of indices of violated invariants
        self._verdicts = {}
        self.memo_hits = 0
        self.memo_misses = 0

    def failed_invariants(self, state):
        """The invariants violated by a quiescent state (memoized)."""
        if not self.memoize:
            system = self.system
            return [prop for prop in self.invariants
                    if not prop.holds(state, system)]
        key = state.physical_key()
        failed = self._verdicts.get(key)
        if failed is None:
            system = self.system
            failed = tuple(
                index for index, prop in enumerate(self.invariants)
                if not prop.holds(state, system))
            self._verdicts[key] = failed
            self.memo_misses += 1
        else:
            self.memo_hits += 1
        if not failed:
            return ()
        invariants = self.invariants
        return [invariants[index] for index in failed]

    def stats(self):
        return {"invariant_memo_hits": self.memo_hits,
                "invariant_memo_misses": self.memo_misses,
                "invariant_states": len(self._verdicts)}
