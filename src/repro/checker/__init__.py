"""The model checker (the Spin substitute).

* :mod:`repro.checker.violations` - violation and trace records;
* :mod:`repro.checker.monitor` - the safety monitor evaluated during
  cascades (invariants, command conflicts, leakage, robustness);
* :mod:`repro.checker.visited` - visited-state stores: exact hash set and
  Spin-style BITSTATE double-hash bitfield;
* :mod:`repro.checker.explorer` - bounded DFS over external-event
  permutations (the falsification search of §2.3);
* :mod:`repro.checker.ltl` - an LTL fragment with finite-trace evaluation
  and safety-invariant compilation;
* :mod:`repro.checker.trace` - counterexample rendering, including the
  Fig-7 style Spin violation-log format.
"""

from repro.checker.explorer import (
    ExplorationResult,
    Explorer,
    ExplorerOptions,
    verify,
)
from repro.checker.ltl import AtomTable, LTLSyntaxError, bad_prefix, never_claim, parse
from repro.checker.monitor import SafetyMonitor
from repro.checker.trace import SpinLogRenderer, render_violation_log
from repro.checker.violations import Counterexample, TraceStep, Violation
from repro.checker.visited import BitStateTable, ExactVisitedSet

__all__ = [
    "ExplorationResult",
    "Explorer",
    "ExplorerOptions",
    "verify",
    "SafetyMonitor",
    "Counterexample",
    "TraceStep",
    "Violation",
    "BitStateTable",
    "ExactVisitedSet",
    "AtomTable",
    "LTLSyntaxError",
    "bad_prefix",
    "never_claim",
    "parse",
    "SpinLogRenderer",
    "render_violation_log",
]
