"""Visited-state stores: exact hashing and Spin-style BITSTATE hashing.

The paper runs Spin "in verification mode with BITSTATE hashing - an
approximate technique that stores the hash code of states in a bitfield
instead of storing the whole states" (§2.3, citing Holzmann's analysis).
Both stores implement the engine's VisitedStore protocol
(:mod:`repro.engine.visited`):

``state_key(state)``
    Project a model state onto the key form this store hashes.  The exact
    store needs the full canonical key; BITSTATE hashes the 64-bit
    incremental fingerprint, keeping re-canonicalization off the hot path.

``seen_before(key, depth)``
    Record the state; return ``True`` when the state was already visited at
    an equal-or-smaller depth (so the search may prune), ``False`` when the
    state must be (re)expanded.  Depth-aware revisiting keeps the bounded
    search sound: a state first reached near the depth bound gets re-expanded
    if found again closer to the root.
"""

import hashlib


class ExactVisitedSet:
    """Stores full state keys (exhaustive within the bound).

    Two entry points share one depth table semantics:

    * the legacy key protocol (``state_key`` + ``seen_before``) hashes the
      full canonical key - exact, but re-canonicalizing every state is the
      single largest per-state cost of the search;
    * :meth:`seen_state` is the engine's fast path: states are bucketed by
      their incremental 64-bit fingerprint first, and the canonical key is
      only computed when a fingerprint was already present (i.e. for
      duplicates and the rare true collision).  A state with a fresh
      fingerprint is stored *by reference* and canonicalized lazily on the
      first later hit - callers must not mutate states after submitting
      them (the engine never does: states are frozen once their cascade
      finishes).  Exactness is preserved: equal states always collide on
      the fingerprint and are then confirmed canonically.

    ``schema`` (a :class:`~repro.model.schema.StateSchema`, optional)
    switches the canonical form from ``canonical_key()``'s sorting walk to
    the schema's precompiled packed layout - same exactness, fixed slot
    order instead of per-state sorting.  The engine passes the system's
    schema; key-protocol callers without one keep the legacy form.
    """

    def __init__(self, schema=None):
        self._min_depth = {}
        #: fingerprint -> list of [canonical_key_or_state, resolved, depth]
        self._by_fingerprint = {}
        self._schema = schema
        self._distinct = 0

    def state_key(self, state):
        if self._schema is not None:
            return self._schema.pack(state)
        return state.canonical_key()

    def seen_before(self, key, depth):
        best = self._min_depth.get(key)
        if best is not None and best <= depth:
            return True
        if best is None:
            self._distinct += 1
        self._min_depth[key] = depth
        return False

    def seen_state(self, state, depth):
        fingerprint = state.fingerprint()
        chain = self._by_fingerprint.get(fingerprint)
        if chain is None:
            self._by_fingerprint[fingerprint] = [[state, False, depth]]
            self._distinct += 1
            return False
        key = self.state_key(state)
        for entry in chain:
            if not entry[1]:
                entry[0] = self.state_key(entry[0])
                entry[1] = True
            if entry[0] == key:
                if entry[2] <= depth:
                    return True
                entry[2] = depth
                return False
        chain.append([key, True, depth])
        self._distinct += 1
        return False

    def distinct_count(self):
        """Distinct states stored so far - O(1), the engine's per-state
        counter (a depth-improved revisit does not grow it)."""
        return self._distinct

    def approx_bytes(self):
        """Recursive size of the stored keys (and pinned states).

        Honest but O(stored): meant for end-of-run statistics, not the
        hot path.  Shared sub-objects are counted once.
        """
        import sys

        seen = set()

        def size(obj):
            if id(obj) in seen:
                return 0
            seen.add(id(obj))
            total = sys.getsizeof(obj)
            if isinstance(obj, (tuple, list)):
                total += sum(size(item) for item in obj)
            elif isinstance(obj, dict):
                total += sum(size(k) + size(v) for k, v in obj.items())
            return total

        total = sys.getsizeof(self._min_depth) + sys.getsizeof(
            self._by_fingerprint)
        for key in self._min_depth:
            total += size(key)
        for chain in self._by_fingerprint.values():
            for entry in chain:
                if entry[1]:
                    total += size(entry[0])
                else:
                    # an unresolved entry pins the whole state; count its
                    # canonical key as the comparable storage cost
                    total += size(entry[0].canonical_key())
        return total

    def stats(self):
        stored = len(self)
        approx = self.approx_bytes()
        return {"stored": stored, "approx_bytes": approx,
                "bytes_per_state": round(approx / stored, 1) if stored else 0.0}

    def __len__(self):
        return (len(self._min_depth)
                + sum(len(chain) for chain in self._by_fingerprint.values()))


class BitStateTable:
    """Double-hash bitfield (Holzmann's supertrace / BITSTATE).

    ``bits_log2`` selects the bitfield size (default 2^23 bits = 1 MiB).
    ``hash_count`` independent hash functions set/check bits; a state is
    reported seen only when *all* its bits were set, so false positives
    (missed states) are possible but false negatives are not - exactly
    Spin's trade-off.

    Depth-aware re-expansion needs per-state depth, which a bitfield cannot
    store; like Spin we accept the loss and keep a small side table of the
    lowest depths seen per hash signature for the common cases.
    """

    def __init__(self, bits_log2=23, hash_count=2):
        if bits_log2 < 8 or bits_log2 > 34:
            raise ValueError("bits_log2 out of supported range")
        self.bits = 1 << bits_log2
        self.hash_count = max(1, hash_count)
        self._field = bytearray(self.bits // 8)
        self.collisions = 0
        self.stored = 0
        self._fill_cache = None

    @staticmethod
    def state_key(state):
        return state.fingerprint()

    def seen_state(self, state, depth):
        return self.seen_before(state.fingerprint(), depth)

    def _bit_positions(self, key):
        digest = hashlib.blake2b(repr(key).encode("utf-8"),
                                 digest_size=8 * self.hash_count).digest()
        positions = []
        for index in range(self.hash_count):
            chunk = digest[8 * index:8 * (index + 1)]
            positions.append(int.from_bytes(chunk, "little") % self.bits)
        return positions

    def seen_before(self, key, depth):
        positions = self._bit_positions(key)
        all_set = True
        for pos in positions:
            byte, bit = divmod(pos, 8)
            if not (self._field[byte] >> bit) & 1:
                all_set = False
        if all_set:
            self.collisions += 1
            return True
        for pos in positions:
            byte, bit = divmod(pos, 8)
            self._field[byte] |= (1 << bit)
        self.stored += 1
        return False

    @property
    def fill_ratio(self):
        """Fraction of bits set (Spin prints this as hash-factor health).

        Popcounted through one big-integer view of the field (C-speed
        ``int.bit_count``) and cached per ``stored`` watermark, so stats
        printing inside a run is O(1) amortized instead of a per-byte
        ``bin().count()`` sweep every call.
        """
        if self._fill_cache is None or self._fill_cache[0] != self.stored:
            set_bits = int.from_bytes(self._field, "little").bit_count()
            self._fill_cache = (self.stored, set_bits / float(self.bits))
        return self._fill_cache[1]

    def stats(self):
        stored = self.stored
        approx = len(self._field)
        return {"stored": stored, "collisions": self.collisions,
                "fill_ratio": self.fill_ratio,
                "approx_bytes": approx,
                "bytes_per_state": round(approx / stored, 1) if stored else 0.0}

    def distinct_count(self):
        """Distinct bit signatures stored (the bitfield's state count)."""
        return self.stored

    def __len__(self):
        return self.stored
