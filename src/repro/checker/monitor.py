"""The safety monitor: evaluates properties while a cascade executes.

One monitor instance lives for one transition (one external event and its
cascade).  The cascade context calls the hooks; the monitor turns them into
:class:`~repro.checker.violations.Violation` records:

* command hooks implement Algorithm 1 line 16 ("Verify conflicting and
  repeated commands violations");
* operation hooks implement the leakage / security-sensitive-command
  properties;
* :meth:`check_invariants` evaluates the safe-physical-state invariants on
  the quiescent state reached after the cascade;
* :meth:`finish` closes the robustness check (dropped command without a
  user notification).
"""

from repro.checker.violations import Violation
from repro.devices.capabilities import conflicting_values
from repro.properties.base import (
    KIND_CONFLICT,
    KIND_FAKE_EVENT,
    KIND_INVARIANT,
    KIND_LEAKAGE_HTTP,
    KIND_LEAKAGE_SMS,
    KIND_REPEAT,
    KIND_ROBUSTNESS,
    KIND_SECURITY_CMD,
)


class SafetyMonitor:
    """Per-cascade property monitor.

    ``compiled`` optionally supplies a
    :class:`~repro.checker.compiled.CompiledProperties` set: the property
    partition is then shared instead of being rebuilt per cascade, and
    invariant verdicts come from its per-physical-state memo.  Without it
    the monitor partitions and evaluates from scratch (the exact path).
    """

    __slots__ = ("system", "violations", "_compiled", "_by_kind",
                 "_invariants", "_commands", "_dropped", "_notified",
                 "_actors")

    def __init__(self, system, properties, compiled=None):
        self.system = system
        self.violations = []
        self._compiled = compiled
        if compiled is not None:
            self._by_kind = compiled.by_kind
            self._invariants = compiled.invariants
        else:
            self._by_kind = {}
            self._invariants = []
            for prop in properties:
                if not prop.applicable(system):
                    continue
                if prop.kind == KIND_INVARIANT:
                    self._invariants.append(prop)
                else:
                    self._by_kind[prop.kind] = prop
        # per-cascade command log: (device, command, payload, app)
        self._commands = []
        # apps whose command was dropped by a failure, and apps that notified
        self._dropped = {}
        self._notified = set()
        # apps that acted during this cascade (for invariant attribution)
        self._actors = []

    # -- command hygiene ------------------------------------------------------

    def on_actor(self, app_name):
        """Record that an app acted (commanded/changed mode) this cascade."""
        if app_name and app_name not in self._actors:
            self._actors.append(app_name)

    def on_command(self, device_name, command, args, app_name, effect):
        """Called for every actuator command before it is applied."""
        self.on_actor(app_name)
        payload = tuple(args)
        conflict_prop = self._by_kind.get(KIND_CONFLICT)
        repeat_prop = self._by_kind.get(KIND_REPEAT)
        for prev_device, prev_command, prev_payload, prev_app, prev_effect in self._commands:
            if prev_device != device_name:
                continue
            if repeat_prop and prev_command == command and prev_payload == payload:
                self._report(repeat_prop,
                             "%s received repeated '%s' commands (from %s and %s)"
                             % (device_name, command, prev_app, app_name),
                             apps=(prev_app, app_name))
            if (conflict_prop and effect is not None and prev_effect is not None
                    and effect.attribute == prev_effect.attribute):
                value_a = prev_effect.value if not prev_effect.takes_arg else (
                    prev_payload[0] if prev_payload else None)
                value_b = effect.value if not effect.takes_arg else (
                    payload[0] if payload else None)
                if (value_a is not None and value_b is not None
                        and conflicting_values(str(value_a), str(value_b))):
                    self._report(conflict_prop,
                                 "%s received conflicting commands '%s' and "
                                 "'%s' (from %s and %s)"
                                 % (device_name, prev_command, command,
                                    prev_app, app_name),
                                 apps=(prev_app, app_name))
        self._commands.append((device_name, command, payload, app_name, effect))

    # -- leakage / suspicious behaviour -----------------------------------------

    def on_http(self, app_name, api, url):
        prop = self._by_kind.get(KIND_LEAKAGE_HTTP)
        if prop is None:
            return
        if self.system.is_http_allowed(app_name, url):
            return
        self._report(prop, "%s invoked network interface %s(%r)"
                     % (app_name, api, url), apps=(app_name,))

    def on_sms(self, app_name, recipient, message):
        self._notified.add(app_name)
        prop = self._by_kind.get(KIND_LEAKAGE_SMS)
        if prop is None:
            return
        if recipient and recipient in self.system.contacts:
            return
        if not recipient and not self.system.contacts:
            return
        self._report(prop, "%s sent SMS to unconfigured recipient %r"
                     % (app_name, recipient), apps=(app_name,))

    def on_push(self, app_name, message):
        self._notified.add(app_name)

    def on_security_command(self, app_name, command):
        prop = self._by_kind.get(KIND_SECURITY_CMD)
        if prop is None:
            return
        self._report(prop, "%s executed security-sensitive command '%s'"
                     % (app_name, command), apps=(app_name,))

    def on_fake_event(self, app_name, attribute, value):
        prop = self._by_kind.get(KIND_FAKE_EVENT)
        if prop is None:
            return
        self._report(prop, "%s created fake event %s=%s"
                     % (app_name, attribute, value), apps=(app_name,))

    def on_command_dropped(self, device_name, command, app_name, reason):
        self._dropped.setdefault(app_name, []).append(
            (device_name, command, reason))

    # -- invariants & cascade end -----------------------------------------------

    def check_invariants(self, state):
        """Evaluate the physical-state invariants on a quiescent state.

        Violations are attributed to the apps that acted during the
        cascade that produced the state (Table 5's "apps related to
        example" column)."""
        if self._compiled is not None:
            failed = self._compiled.failed_invariants(state)
        else:
            failed = [prop for prop in self._invariants
                      if not prop.holds(state, self.system)]
        for prop in failed:
            apps = tuple(self._actors) or self._responsible_apps(prop)
            self._report(prop,
                         "unsafe physical state: %s" % prop.description,
                         apps=apps)

    def finish(self, state):
        """Close per-cascade checks; returns collected violations."""
        robustness = self._by_kind.get(KIND_ROBUSTNESS)
        if robustness is not None:
            for app_name, drops in self._dropped.items():
                if app_name in self._notified:
                    continue
                device_name, command, reason = drops[0]
                self._report(
                    robustness,
                    "%s did not verify/notify after command '%s' to %s was "
                    "dropped (%s)" % (app_name, command, device_name, reason),
                    apps=(app_name,))
        self.check_invariants(state)
        return self.violations

    def _responsible_apps(self, prop):
        """When no app acted, an *obligation* invariant (actuator must be in
        some state) falls on the apps wired to its role actuators."""
        roles = getattr(prop, "roles", ())
        devices = set()
        for role in roles:
            for name in self.system.role_list(role):
                if isinstance(name, str) and name in self.system.devices:
                    if self.system.devices[name].spec.is_actuator:
                        devices.add(name)
        apps = []
        for app in self.system.apps:
            for input_name in app.binding_names():
                if devices.intersection(app.bound_devices(input_name)):
                    if app.name not in apps:
                        apps.append(app.name)
                    break
        return tuple(apps)

    def _report(self, prop, message, apps=()):
        violation = Violation(prop, message, apps=apps)
        if violation.dedup_key() not in {v.dedup_key() for v in self.violations}:
            self.violations.append(violation)
