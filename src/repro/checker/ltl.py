"""LTL safety fragment: parsing, finite-trace evaluation, never claims.

IotSan verifies the safe-physical-state properties "using linear temporal
logic (LTL)" (§8) and Spin turns each formula into a *never claim* that
watches for bad prefixes.  Our explorer checks invariants directly on
quiescent states, but this module provides the same LTL surface:

* :func:`parse` - parse Spin-style LTL text (``[]``, ``<>``, ``X``, ``U``,
  ``W``, ``->``, ``<->``, ``&&``, ``||``, ``!``) into a formula tree;
* :meth:`Formula.evaluate` - finite-trace (LTLf) semantics over a list of
  states, with atoms resolved through an atom table;
* :func:`bad_prefix` - the falsifier view: the first index at which a
  safety formula is already irrecoverably violated;
* :func:`never_claim` - render the Spin never claim for ``!formula``, the
  artifact Spin's ``ltl`` blocks compile to (used by the Promela emitter);
* :class:`AtomTable` - named state predicates (``nobody_home``,
  ``door_locked``, ...) bound to one system's device-association roles,
  mirroring how "the LTL format of the selected properties are
  automatically generated" from association info (§8).
"""

import re

from repro.properties import physical


class LTLSyntaxError(ValueError):
    """Raised when LTL text cannot be parsed."""


# ---------------------------------------------------------------------------
# formula tree
# ---------------------------------------------------------------------------


class Formula:
    """Base class for LTL formula nodes.

    ``evaluate(trace, index, atoms)`` implements finite-trace semantics:
    ``trace`` is a sequence of states, ``atoms`` maps atom names to
    ``predicate(state) -> bool``.
    """

    def evaluate(self, trace, index, atoms):
        raise NotImplementedError

    def holds_on(self, trace, atoms):
        """Evaluate the formula at the start of a finite trace."""
        return self.evaluate(trace, 0, atoms)

    def atoms(self):
        """The set of atom names mentioned in the formula."""
        names = set()
        self._collect_atoms(names)
        return names

    def _collect_atoms(self, names):
        for child in self.children():
            child._collect_atoms(names)

    def children(self):
        return ()

    def is_safety(self):
        """Syntactic safety check: no ``<>``/``U`` outside negation.

        The fragment ``[]``, ``X``, ``W``, boolean connectives over atoms is
        guaranteed safety; formulas outside it may still be safety but we
        answer conservatively (Spin would accept either; IotSan's 38
        physical-state properties are all plain ``[]`` invariants).
        """
        return self._is_safety(positive=True)

    def _is_safety(self, positive):
        return all(child._is_safety(positive) for child in self.children())

    def __eq__(self, other):
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self):
        return hash((type(self).__name__,) + self._key())

    def _key(self):
        return tuple(self.children())


class TrueFormula(Formula):
    def evaluate(self, trace, index, atoms):
        return True

    def _key(self):
        return ()

    def __str__(self):
        return "true"


class FalseFormula(Formula):
    def evaluate(self, trace, index, atoms):
        return False

    def _key(self):
        return ()

    def __str__(self):
        return "false"


class Atom(Formula):
    """A named state predicate, e.g. ``nobody_home``."""

    def __init__(self, name):
        self.name = name

    def evaluate(self, trace, index, atoms):
        predicate = atoms.get(self.name)
        if predicate is None:
            raise KeyError("unbound LTL atom %r" % self.name)
        result = predicate(trace[index])
        # three-valued predicates treat "unknowable" (None) as holding,
        # matching InvariantProperty.holds
        return result is not False

    def _collect_atoms(self, names):
        names.add(self.name)

    def _key(self):
        return (self.name,)

    def __str__(self):
        return self.name


class Not(Formula):
    def __init__(self, operand):
        self.operand = operand

    def evaluate(self, trace, index, atoms):
        return not self.operand.evaluate(trace, index, atoms)

    def children(self):
        return (self.operand,)

    def _is_safety(self, positive):
        return self.operand._is_safety(not positive)

    def __str__(self):
        return "!%s" % _wrap(self.operand)


class _Binary(Formula):
    symbol = "?"

    def __init__(self, left, right):
        self.left = left
        self.right = right

    def children(self):
        return (self.left, self.right)

    def __str__(self):
        return "(%s %s %s)" % (self.left, self.symbol, self.right)


class And(_Binary):
    symbol = "&&"

    def evaluate(self, trace, index, atoms):
        return (self.left.evaluate(trace, index, atoms)
                and self.right.evaluate(trace, index, atoms))


class Or(_Binary):
    symbol = "||"

    def evaluate(self, trace, index, atoms):
        return (self.left.evaluate(trace, index, atoms)
                or self.right.evaluate(trace, index, atoms))


class Implies(_Binary):
    symbol = "->"

    def evaluate(self, trace, index, atoms):
        return (not self.left.evaluate(trace, index, atoms)
                or self.right.evaluate(trace, index, atoms))

    def _is_safety(self, positive):
        return (self.left._is_safety(not positive)
                and self.right._is_safety(positive))


class Iff(_Binary):
    symbol = "<->"

    def evaluate(self, trace, index, atoms):
        return (self.left.evaluate(trace, index, atoms)
                == self.right.evaluate(trace, index, atoms))

    def _is_safety(self, positive):
        # p <-> q mixes polarities; conservative only if both sides are
        # state predicates (no temporal operators)
        return not _has_temporal(self.left) and not _has_temporal(self.right)


class Always(Formula):
    """``[] p``: p holds at every position of the (finite) trace."""

    def __init__(self, operand):
        self.operand = operand

    def evaluate(self, trace, index, atoms):
        return all(self.operand.evaluate(trace, i, atoms)
                   for i in range(index, len(trace)))

    def children(self):
        return (self.operand,)

    def __str__(self):
        return "[] %s" % _wrap(self.operand)


class Eventually(Formula):
    """``<> p`` on a finite trace: p holds at some remaining position.

    Under *falsification* a finite trace can only ever witness the negation
    of a liveness obligation, never prove it; IotSan uses this shape for
    the robustness property (``[] (dropped -> <> notified)``) where the end
    of the cascade bounds the obligation.
    """

    def __init__(self, operand):
        self.operand = operand

    def evaluate(self, trace, index, atoms):
        return any(self.operand.evaluate(trace, i, atoms)
                   for i in range(index, len(trace)))

    def children(self):
        return (self.operand,)

    def _is_safety(self, positive):
        return self.operand._is_safety(positive) and not positive

    def __str__(self):
        return "<> %s" % _wrap(self.operand)


class Next(Formula):
    """``X p``: weak next on finite traces (vacuously true at the end)."""

    def __init__(self, operand):
        self.operand = operand

    def evaluate(self, trace, index, atoms):
        if index + 1 >= len(trace):
            return True
        return self.operand.evaluate(trace, index + 1, atoms)

    def children(self):
        return (self.operand,)

    def __str__(self):
        return "X %s" % _wrap(self.operand)


class Until(_Binary):
    """``p U q`` (strong until)."""

    symbol = "U"

    def evaluate(self, trace, index, atoms):
        for k in range(index, len(trace)):
            if self.right.evaluate(trace, k, atoms):
                return all(self.left.evaluate(trace, j, atoms)
                           for j in range(index, k))
        return False

    def _is_safety(self, positive):
        return (self.left._is_safety(positive)
                and self.right._is_safety(positive) and not positive)


class WeakUntil(_Binary):
    """``p W q``: until, or p forever - the safety flavour of until."""

    symbol = "W"

    def evaluate(self, trace, index, atoms):
        for k in range(index, len(trace)):
            if self.right.evaluate(trace, k, atoms):
                return all(self.left.evaluate(trace, j, atoms)
                           for j in range(index, k))
        return all(self.left.evaluate(trace, j, atoms)
                   for j in range(index, len(trace)))


def _wrap(formula):
    if isinstance(formula, (Atom, TrueFormula, FalseFormula, Not)):
        return str(formula)
    return "(%s)" % formula


def _has_temporal(formula):
    if isinstance(formula, (Always, Eventually, Next, Until, WeakUntil)):
        return True
    return any(_has_temporal(child) for child in formula.children())


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"\s*(\[\]|<>|<->|->|&&|\|\||==|!=|>=|<=|>|<|!|\(|\)|U\b|W\b|X\b|G\b|F\b"
    r"|[A-Za-z_][A-Za-z0-9_]*|\d+(?:\.\d+)?)")

#: comparison operators folded into composite atoms ("temp >= TEMP_HIGH")
_COMPARATORS = ("==", "!=", ">=", "<=", ">", "<")

#: word-operator aliases accepted on input (Spin accepts both spellings)
_ALIASES = {"G": "[]", "F": "<>", "always": "[]", "eventually": "<>",
            "and": "&&", "or": "||", "not": "!", "implies": "->"}


def _tokenize(text):
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise LTLSyntaxError("cannot tokenize LTL at %r" % remainder[:20])
        token = match.group(1)
        tokens.append(_ALIASES.get(token, token))
        position = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser; precedence (loosest first):
    ``<->``, ``->``, ``||``, ``&&``, ``U``/``W``, unary (``[]  <> X !``)."""

    def __init__(self, tokens):
        self.tokens = tokens
        self.position = 0

    def peek(self):
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def take(self):
        token = self.peek()
        self.position += 1
        return token

    def expect(self, token):
        got = self.take()
        if got != token:
            raise LTLSyntaxError("expected %r, got %r" % (token, got))

    def parse(self):
        formula = self.iff()
        if self.peek() is not None:
            raise LTLSyntaxError("trailing tokens after formula: %r"
                                 % self.peek())
        return formula

    def iff(self):
        left = self.implies()
        while self.peek() == "<->":
            self.take()
            left = Iff(left, self.implies())
        return left

    def implies(self):
        left = self.disjunction()
        if self.peek() == "->":   # right-associative
            self.take()
            return Implies(left, self.implies())
        return left

    def disjunction(self):
        left = self.conjunction()
        while self.peek() == "||":
            self.take()
            left = Or(left, self.conjunction())
        return left

    def conjunction(self):
        left = self.until()
        while self.peek() == "&&":
            self.take()
            left = And(left, self.until())
        return left

    def until(self):
        left = self.unary()
        while self.peek() in ("U", "W"):
            operator = self.take()
            right = self.unary()
            left = Until(left, right) if operator == "U" else WeakUntil(left, right)
        return left

    def unary(self):
        token = self.peek()
        if token == "[]":
            self.take()
            return Always(self.unary())
        if token == "<>":
            self.take()
            return Eventually(self.unary())
        if token == "X":
            self.take()
            return Next(self.unary())
        if token == "!":
            self.take()
            return Not(self.unary())
        if token == "(":
            self.take()
            inner = self.iff()
            self.expect(")")
            return inner
        if token == "true":
            self.take()
            return TrueFormula()
        if token == "false":
            self.take()
            return FalseFormula()
        if token is None:
            raise LTLSyntaxError("unexpected end of formula")
        if not re.match(r"[A-Za-z_][A-Za-z0-9_]*$|\d", token):
            raise LTLSyntaxError("unexpected token %r" % token)
        self.take()
        # fold "lhs >= rhs" into one composite atom; the atom table decides
        # what the comparison means for the bound system
        result = None
        lhs = token
        while self.peek() in _COMPARATORS:
            comparator = self.take()
            rhs = self.take()
            if rhs is None or rhs in _COMPARATORS or rhs in ("(", ")"):
                raise LTLSyntaxError("comparison missing right-hand side")
            atom = Atom("%s %s %s" % (lhs, comparator, rhs))
            result = atom if result is None else And(result, atom)
            lhs = rhs  # chained comparisons: a <= b <= c
        return result if result is not None else Atom(token)


def parse(text):
    """Parse Spin-style LTL text into a :class:`Formula`."""
    tokens = _tokenize(text)
    if not tokens:
        raise LTLSyntaxError("empty LTL formula")
    return _Parser(tokens).parse()


# ---------------------------------------------------------------------------
# falsification helpers
# ---------------------------------------------------------------------------


def bad_prefix(formula, trace, atoms):
    """The first index ``i`` such that ``trace[:i+1]`` already violates a
    safety formula, or ``None`` if the whole trace satisfies it.

    This is exactly what Spin's never claim detects: a finite prefix no
    extension of which can satisfy the formula.
    """
    for end in range(1, len(trace) + 1):
        if not formula.holds_on(trace[:end], atoms):
            return end - 1
    return None


def violates(formula, trace, atoms):
    """Whether the finite trace falsifies the formula."""
    return not formula.holds_on(trace, atoms)


# ---------------------------------------------------------------------------
# never claims (Spin artifact)
# ---------------------------------------------------------------------------


def never_claim(formula, comment=None):
    """Render a Spin never claim accepting the violations of ``formula``.

    Only the invariant shapes IotSan generates are supported exactly:
    ``[] p`` produces the canonical two-state claim; other safety formulas
    fall back to a monitor on the formula's one-step violation condition.
    """
    text = str(formula)
    header = "never {  /* !(%s) */" % (comment or text)
    if isinstance(formula, Always):
        condition = _promela_condition(Not(formula.operand))
        return "\n".join([
            header,
            "accept_init:",
            "    do",
            "    :: %s -> break" % condition,
            "    :: else",
            "    od",
            "}",
        ])
    condition = _promela_condition(Not(formula))
    return "\n".join([
        header,
        "accept_init:",
        "    do",
        "    :: %s -> break" % condition,
        "    :: else",
        "    od",
        "}",
    ])


def _promela_condition(formula):
    """A propositional Promela guard for the one-state part of a formula."""
    if isinstance(formula, Atom):
        return formula.name
    if isinstance(formula, TrueFormula):
        return "true"
    if isinstance(formula, FalseFormula):
        return "false"
    if isinstance(formula, Not):
        return "!(%s)" % _promela_condition(formula.operand)
    if isinstance(formula, And):
        return "(%s && %s)" % (_promela_condition(formula.left),
                               _promela_condition(formula.right))
    if isinstance(formula, Or):
        return "(%s || %s)" % (_promela_condition(formula.left),
                               _promela_condition(formula.right))
    if isinstance(formula, Implies):
        return "(!(%s) || %s)" % (_promela_condition(formula.left),
                                  _promela_condition(formula.right))
    # temporal subformulas have no one-state guard; approximate with their
    # textual form so the artifact stays readable
    return "(%s)" % formula


# ---------------------------------------------------------------------------
# atom tables
# ---------------------------------------------------------------------------


class AtomTable:
    """Named state predicates bound to one system.

    The builtin vocabulary covers the predicates the 38 physical-state
    properties read (presence, smoke/CO/leak detection, intrusion, modes,
    lock/valve/alarm roles, temperature thresholds).  Extra atoms can be
    registered with :meth:`define`.
    """

    def __init__(self, system):
        self.system = system
        self._atoms = {}
        self._install_builtins()

    # mapping protocol used by Formula.evaluate -----------------------------------

    def get(self, name):
        predicate = self._atoms.get(name)
        if predicate is None:
            predicate = self._resolve_derived(name)
            if predicate is not None:
                self._atoms[name] = predicate
        return predicate

    def __contains__(self, name):
        return name in self._atoms

    def names(self):
        return sorted(self._atoms)

    def define(self, name, predicate):
        """Register ``predicate(state) -> bool|None`` under ``name``."""
        self._atoms[name] = predicate
        return self

    # builtins ----------------------------------------------------------------

    def _install_builtins(self):
        system = self.system
        physical_atoms = {
            "nobody_home": physical.nobody_home,
            "somebody_home": physical.somebody_home,
            "smoke_detected": physical.smoke_detected,
            "co_detected": physical.co_detected,
            "water_leak": physical.water_leak,
            "intrusion": physical.intrusion,
        }
        for name, predicate in physical_atoms.items():
            self._atoms[name] = _bind_system(predicate, system)

        self._atoms["mode_away"] = lambda s: s.mode == system.away_mode
        self._atoms["mode_home"] = lambda s: s.mode == system.home_mode
        self._atoms["mode_night"] = lambda s: s.mode == system.night_mode

        self._role_attr_atom("door_locked", "main_door_lock", "lock", "locked")
        self._role_attr_atom("door_unlocked", "main_door_lock", "lock",
                             "unlocked")
        self._role_attr_atom("garage_closed", "garage_door", "door", "closed")
        self._role_attr_atom("valve_open", "water_valve", "valve", "open")
        self._role_attr_atom("heater_on", "heater_outlet", "switch", "on")
        self._role_attr_atom("ac_on", "ac_outlet", "switch", "on")

        def alarm_sounding(state):
            device = system.role("alarm") or system.role("siren")
            if device is None:
                return None
            return state.attribute(device, "alarm") in ("strobe", "siren",
                                                        "both")
        self._atoms["alarm_sounding"] = alarm_sounding

        def temp_below_low(state):
            temp = physical.temperature(state, system)
            if temp is None:
                return None
            low = system.role("temp_low") or physical.TEMP_LOW
            return temp < float(low)

        def temp_above_high(state):
            temp = physical.temperature(state, system)
            if temp is None:
                return None
            high = system.role("temp_high") or physical.TEMP_HIGH
            return temp > float(high)

        self._atoms["temp_below_low"] = temp_below_low
        self._atoms["temp_above_high"] = temp_above_high

    # derived atoms -------------------------------------------------------------

    def _resolve_derived(self, name):
        """Resolve composite ("temp >= TEMP_HIGH") and negated ("heater_off")
        atom names on demand."""
        match = re.match(
            r"([A-Za-z_][A-Za-z0-9_]*)\s*(==|!=|>=|<=|>|<)\s*(\S+)$", name)
        if match:
            return self._comparison(match.group(1), match.group(2),
                                    match.group(3))
        if name.endswith("_off"):
            positive = self.get(name[:-4] + "_on")
            if positive is not None:
                return lambda state: _negate(positive(state))
        if name == "home":
            return self._atoms.get("somebody_home")
        if name == "away":
            return self._atoms.get("nobody_home")
        return None

    def _comparison(self, lhs, comparator, rhs):
        left = self._term(lhs)
        right = self._term(rhs)
        if left is None or right is None:
            return None
        compare = _COMPARE_FUNCS[comparator]

        def predicate(state):
            left_value = left(state)
            right_value = right(state)
            if left_value is None or right_value is None:
                return None
            try:
                return compare(float(left_value), float(right_value))
            except (TypeError, ValueError):
                return compare(str(left_value), str(right_value))

        return predicate

    def _term(self, name):
        """A term of a comparison: state variable, threshold, or literal."""
        system = self.system
        if name == "temp":
            return lambda state: physical.temperature(state, system)
        if name == "mode":
            return lambda state: state.mode
        if name == "tstat_mode":
            def thermostat_mode(state):
                device = system.role("thermostat")
                if device is None:
                    return None
                return state.attribute(device, "thermostatMode")
            return thermostat_mode
        if name == "humidity":
            def humidity(state):
                sensor = system.role("humidity_sensor")
                if sensor is None:
                    return None
                return state.attribute(sensor, "humidity")
            return humidity
        if name == "moisture":
            def moisture(state):
                sensor = system.role("moisture_sensor")
                if sensor is None:
                    return None
                return state.attribute(sensor, "humidity")
            return moisture
        thresholds = {"TEMP_HIGH": "temp_high", "TEMP_LOW": "temp_low",
                      "HUMIDITY_HIGH": "humidity_high", "HUM_HIGH": "humidity_high",
                      "HUMIDITY_LOW": "humidity_low", "HUM_LOW": "humidity_low"}
        if name in thresholds:
            default = getattr(physical, name.replace("HUM_", "HUMIDITY_"))
            role = thresholds[name]
            return lambda state: system.role(role) or default
        try:
            literal = float(name)
            return lambda state: literal
        except ValueError:
            pass
        if re.match(r"[A-Za-z_][A-Za-z0-9_]*$", name):
            return lambda state: name
        return None

    def _role_attr_atom(self, name, role, attribute, expected):
        system = self.system

        def predicate(state):
            device = system.role(role)
            if device is None:
                return None
            return state.attribute(device, attribute) == expected

        self._atoms[name] = predicate


_COMPARE_FUNCS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    ">=": lambda a, b: a >= b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    "<": lambda a, b: a < b,
}


def _negate(value):
    if value is None:
        return None
    return not value


def _bind_system(predicate, system):
    return lambda state: predicate(state, system)


def invariant_formula(prop):
    """Parse an :class:`InvariantProperty`'s declared LTL text, if any."""
    if not prop.ltl:
        return None
    try:
        return parse(prop.ltl)
    except LTLSyntaxError:
        return None
