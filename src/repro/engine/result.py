"""Outcome records: per-run results and merged batch statistics."""


class ExplorationResult:
    """Outcome of one run: violations + statistics."""

    def __init__(self):
        #: dedup key -> Counterexample (first found per distinct violation)
        self.counterexamples = {}
        self.states_explored = 0
        self.transitions = 0
        self.elapsed = 0.0
        self.truncated = False
        self.truncated_reason = None
        #: store statistics snapshot ({} until the run finishes)
        self.visited_stats = {}
        #: successor-cache statistics: expansions served from the memo vs
        #: generated live, and which keying the cache ran with
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_mode = "off"
        #: True when the hit-rate watchdog disabled the cache mid-run
        self.cache_auto_disabled = False
        #: external events skipped by the sleep-set reduction
        self.commutes_pruned = 0
        #: compiled-property statistics (invariant verdict memo)
        self.property_stats = {}

    @property
    def cache_hit_rate(self):
        """Fraction of expansion lookups served from the successor cache."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def violations(self):
        return [ce.violation for ce in self.counterexamples.values()]

    @property
    def violated_property_ids(self):
        return sorted({v.property.id for v in self.violations})

    def counterexample_for(self, property_id):
        """The first counterexample recorded for a property id."""
        for ce in self.counterexamples.values():
            if ce.violation.property.id == property_id:
                return ce
        return None

    @property
    def has_violations(self):
        return bool(self.counterexamples)

    @property
    def states_per_second(self):
        if self.elapsed <= 0:
            return 0.0
        return self.states_explored / self.elapsed

    def summary(self):
        lines = ["%d distinct violation(s) of %d property(ies); "
                 "%d states, %d transitions, %.2fs%s" % (
                     len(self.counterexamples),
                     len(self.violated_property_ids),
                     self.states_explored, self.transitions, self.elapsed,
                     " (truncated: %s)" % self.truncated_reason
                     if self.truncated else "")]
        if self.cache_mode != "off" or self.commutes_pruned:
            lines.append(
                "  engine: successor cache %s (%d hits / %d misses, "
                "%.1f%% hit rate%s), %d commuting interleavings pruned" % (
                    self.cache_mode, self.cache_hits, self.cache_misses,
                    self.cache_hit_rate * 100.0,
                    ", auto-disabled" if self.cache_auto_disabled else "",
                    self.commutes_pruned))
        if self.visited_stats.get("bytes_per_state"):
            lines.append(
                "  visited store: %d states stored, ~%.0f bytes/state" % (
                    self.visited_stats.get("stored", 0),
                    self.visited_stats["bytes_per_state"]))
        for ce in self.counterexamples.values():
            lines.append("  %s: %s" % (ce.violation.property.id,
                                       ce.violation.message))
        return "\n".join(lines)

    def __repr__(self):
        return "ExplorationResult(violations=%d, states=%d)" % (
            len(self.counterexamples), self.states_explored)


class BatchResult:
    """Merged outcome of a :func:`~repro.engine.batch.verify_many` run."""

    def __init__(self):
        #: job name -> ExplorationResult, in submission order
        self.results = {}
        #: job name -> error string for jobs that raised
        self.errors = {}
        #: wall-clock of the whole batch (not the sum of the jobs)
        self.elapsed = 0.0
        self.workers = 1

    def add(self, name, result):
        self.results[name] = result

    def add_error(self, name, message):
        self.errors[name] = message

    def __getitem__(self, name):
        return self.results[name]

    def __iter__(self):
        return iter(self.results.values())

    def __len__(self):
        return len(self.results)

    # -- merged statistics ---------------------------------------------------

    @property
    def states_explored(self):
        return sum(r.states_explored for r in self.results.values())

    @property
    def transitions(self):
        return sum(r.transitions for r in self.results.values())

    @property
    def job_seconds(self):
        """Sum of per-job times (the serial-equivalent cost)."""
        return sum(r.elapsed for r in self.results.values())

    @property
    def violations(self):
        merged = []
        for result in self.results.values():
            merged.extend(result.violations)
        return merged

    @property
    def violated_property_ids(self):
        ids = set()
        for result in self.results.values():
            ids.update(result.violated_property_ids)
        return sorted(ids)

    @property
    def has_violations(self):
        return any(r.has_violations for r in self.results.values())

    def summary(self):
        lines = ["%d job(s) on %d worker(s): %d violation(s) of %d "
                 "property(ies); %d states, %d transitions; %.2fs wall "
                 "(%.2fs of job time)" % (
                     len(self.results), self.workers, len(self.violations),
                     len(self.violated_property_ids), self.states_explored,
                     self.transitions, self.elapsed, self.job_seconds)]
        for name, result in self.results.items():
            lines.append("  %-28s %d violation(s), %d states, %.2fs"
                         % (name, len(result.counterexamples),
                            result.states_explored, result.elapsed))
        for name, message in self.errors.items():
            lines.append("  %-28s ERROR: %s" % (name, message))
        return "\n".join(lines)

    def __repr__(self):
        return "BatchResult(jobs=%d, violations=%d)" % (
            len(self.results), len(self.violations))
