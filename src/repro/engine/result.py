"""Outcome records: per-run results and merged batch statistics.

Both record types round-trip through JSON with a stable, versioned
schema (``to_json``/``from_json``), counterexample traces included, so
the vetting service's :class:`~repro.service.store.ResultStore` and the
``repro batch --json`` output are consumable by machines and replay
byte-identically.
"""

import json

#: bump when the serialized result layout changes; deserialization
#: refuses newer schemas instead of misreading them
RESULT_SCHEMA_VERSION = 1


def _check_schema(data, kind):
    version = data.get("schema", RESULT_SCHEMA_VERSION)
    if version > RESULT_SCHEMA_VERSION:
        raise ValueError(
            "%s payload has schema version %d; this build reads <= %d"
            % (kind, version, RESULT_SCHEMA_VERSION))


class ExplorationResult:
    """Outcome of one run: violations + statistics."""

    def __init__(self):
        #: dedup key -> Counterexample (first found per distinct violation)
        self.counterexamples = {}
        self.states_explored = 0
        self.transitions = 0
        self.elapsed = 0.0
        self.truncated = False
        self.truncated_reason = None
        #: store statistics snapshot ({} until the run finishes)
        self.visited_stats = {}
        #: successor-cache statistics: expansions served from the memo vs
        #: generated live, and which keying the cache ran with
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_mode = "off"
        #: True when the hit-rate watchdog disabled the cache mid-run
        self.cache_auto_disabled = False
        #: human-readable reason when the watchdog tripped (None otherwise)
        self.cache_disable_reason = None
        #: per-phase wall time breakdown ({} until populated): keys are
        #: phase names (``codegen``, ``explore``, ``canonicalize``, ...)
        self.profile = {}
        #: external events skipped by the sleep-set reduction
        self.commutes_pruned = 0
        #: compiled-property statistics (invariant verdict memo)
        self.property_stats = {}
        #: shard processes this run was partitioned across (1 = classic
        #: in-process search)
        self.workers = 1
        #: per-shard statistics of a sharded run: one dict per worker
        #: (states, transitions, handoffs sent/received, cache and
        #: visited counters); empty for single-worker runs
        self.shard_stats = []
        #: structured crash record of a sharded run that lost workers
        #: (``None`` when every shard finished): ``workers`` (ids),
        #: ``exitcodes``, ``detail`` (traceback tail when the worker
        #: reported one), ``lost_handoffs`` (undelivered cross-shard
        #: states drained from the dead shard's inbox).  Such a result
        #: is always ``truncated`` with reason ``"shard_failure"``:
        #: surviving shards' coverage is merged, but exhaustiveness is
        #: not claimed
        self.shard_failure = None

    @property
    def cache_hit_rate(self):
        """Fraction of expansion lookups served from the successor cache."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def violations(self):
        return [ce.violation for ce in self.counterexamples.values()]

    @property
    def violated_property_ids(self):
        return sorted({v.property.id for v in self.violations})

    def counterexample_for(self, property_id):
        """The first counterexample recorded for a property id."""
        for ce in self.counterexamples.values():
            if ce.violation.property.id == property_id:
                return ce
        return None

    @property
    def has_violations(self):
        return bool(self.counterexamples)

    @property
    def states_per_second(self):
        if self.elapsed <= 0:
            return 0.0
        return self.states_explored / self.elapsed

    # -- serialization -------------------------------------------------------

    @property
    def verdict(self):
        """``"violated"`` or ``"safe"`` - the service-facing outcome."""
        return "violated" if self.counterexamples else "safe"

    @property
    def coverage(self):
        """``"exhaustive"`` or ``"partial"`` - how much a ``safe`` verdict
        is worth.

        Derived, never stored: a truncated run (limit tripped or shard
        lost) covered only part of the bounded space, and a swarm run
        (:class:`~repro.engine.swarm.SwarmResult` overrides this to a
        constant ``"partial"``) is sampled by construction.  Serialized
        for consumers, recomputed on deserialization - a result cannot
        claim more coverage than its own flags support.
        """
        return "partial" if (self.truncated or self.shard_failure) \
            else "exhaustive"

    def to_dict(self):
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "verdict": self.verdict,
            "coverage": self.coverage,
            "counterexamples": [ce.to_dict()
                                for ce in self.counterexamples.values()],
            "states_explored": self.states_explored,
            "transitions": self.transitions,
            "elapsed": self.elapsed,
            "truncated": self.truncated,
            "truncated_reason": self.truncated_reason,
            "visited_stats": dict(self.visited_stats),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_mode": self.cache_mode,
            "cache_auto_disabled": self.cache_auto_disabled,
            "cache_disable_reason": self.cache_disable_reason,
            "profile": dict(self.profile),
            "commutes_pruned": self.commutes_pruned,
            "property_stats": dict(self.property_stats),
            "workers": self.workers,
            "shard_stats": [dict(shard) for shard in self.shard_stats],
            "shard_failure": (dict(self.shard_failure)
                              if self.shard_failure else None),
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild a result from its serialized form (missing optional
        fields default; newer schema versions are refused)."""
        from repro.checker.violations import Counterexample

        _check_schema(data, "ExplorationResult")
        if cls is ExplorationResult and data.get("swarm"):
            # polymorphic rebuild: a swarm payload comes back as the
            # SwarmResult it was (coverage stays "partial", the swarm
            # block survives the round-trip).  Imported lazily -
            # repro.engine.swarm imports this module
            from repro.engine.swarm import SwarmResult
            return SwarmResult.from_dict(data)
        result = cls()
        for ce_data in data.get("counterexamples", ()):
            counterexample = Counterexample.from_dict(ce_data)
            result.counterexamples[
                counterexample.violation.dedup_key()] = counterexample
        result.states_explored = data.get("states_explored", 0)
        result.transitions = data.get("transitions", 0)
        result.elapsed = data.get("elapsed", 0.0)
        result.truncated = data.get("truncated", False)
        result.truncated_reason = data.get("truncated_reason")
        result.visited_stats = dict(data.get("visited_stats", {}))
        result.cache_hits = data.get("cache_hits", 0)
        result.cache_misses = data.get("cache_misses", 0)
        result.cache_mode = data.get("cache_mode", "off")
        result.cache_auto_disabled = data.get("cache_auto_disabled", False)
        result.cache_disable_reason = data.get("cache_disable_reason")
        result.profile = dict(data.get("profile", {}))
        result.commutes_pruned = data.get("commutes_pruned", 0)
        result.property_stats = dict(data.get("property_stats", {}))
        result.workers = data.get("workers", 1)
        result.shard_stats = [dict(shard)
                              for shard in data.get("shard_stats", ())]
        failure = data.get("shard_failure")
        result.shard_failure = dict(failure) if failure else None
        return result

    def to_json(self, indent=None):
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text):
        return cls.from_dict(json.loads(text))

    def summary(self):
        """Human-readable digest: verdict counts, engine stats, one
        line per violation."""
        lines = ["%d distinct violation(s) of %d property(ies); "
                 "%d states, %d transitions, %.2fs%s" % (
                     len(self.counterexamples),
                     len(self.violated_property_ids),
                     self.states_explored, self.transitions, self.elapsed,
                     " (truncated: %s)" % self.truncated_reason
                     if self.truncated else "")]
        if self.workers > 1:
            shards = ", ".join(
                "#%s %d states" % (shard.get("worker", index),
                                   shard.get("states_explored", 0))
                for index, shard in enumerate(self.shard_stats))
            lines.append("  sharded across %d workers (%s)"
                         % (self.workers, shards or "no shard stats"))
            if self.shard_stats:
                handoffs = sum(s.get("handoffs_sent", 0)
                               for s in self.shard_stats)
                wire = sum(s.get("handoff_bytes", 0)
                           for s in self.shard_stats)
                steals = sum(s.get("steals", 0) for s in self.shard_stats)
                stolen = sum(s.get("stolen_states", 0)
                             for s in self.shard_stats)
                lines.append(
                    "  handoffs: %d states crossed shards (%.1f KiB on "
                    "the wire), %d work lease(s) / %d state(s) stolen" % (
                        handoffs, wire / 1024.0, steals, stolen))
        if self.shard_failure:
            lines.append(
                "  shard failure: worker(s) %s died (exit codes %s, "
                "%d handoff(s) lost); coverage is partial" % (
                    self.shard_failure.get("workers"),
                    self.shard_failure.get("exitcodes"),
                    self.shard_failure.get("lost_handoffs", 0)))
        if self.cache_mode != "off" or self.commutes_pruned:
            lines.append(
                "  engine: successor cache %s (%d hits / %d misses, "
                "%.1f%% hit rate%s), %d commuting interleavings pruned" % (
                    self.cache_mode, self.cache_hits, self.cache_misses,
                    self.cache_hit_rate * 100.0,
                    ", auto-disabled" if self.cache_auto_disabled else "",
                    self.commutes_pruned))
        if self.cache_disable_reason:
            lines.append("  cache watchdog: %s" % self.cache_disable_reason)
        if self.profile:
            lines.append("  phases: " + ", ".join(
                "%s %.2fs" % (name, seconds)
                for name, seconds in sorted(self.profile.items())))
        if self.visited_stats.get("bytes_per_state"):
            lines.append(
                "  visited store: %d states stored, ~%.0f bytes/state" % (
                    self.visited_stats.get("stored", 0),
                    self.visited_stats["bytes_per_state"]))
        for ce in self.counterexamples.values():
            lines.append("  %s: %s" % (ce.violation.property.id,
                                       ce.violation.message))
        return "\n".join(lines)

    def __repr__(self):
        return "ExplorationResult(violations=%d, states=%d)" % (
            len(self.counterexamples), self.states_explored)


class BatchResult:
    """Merged outcome of a :func:`~repro.engine.batch.verify_many` run."""

    def __init__(self):
        #: job name -> ExplorationResult, in submission order
        self.results = {}
        #: job name -> error string for jobs that raised
        self.errors = {}
        #: wall-clock of the whole batch (not the sum of the jobs)
        self.elapsed = 0.0
        self.workers = 1

    def add(self, name, result):
        self.results[name] = result

    def add_error(self, name, message):
        self.errors[name] = message

    def __getitem__(self, name):
        return self.results[name]

    def __iter__(self):
        return iter(self.results.values())

    def __len__(self):
        return len(self.results)

    # -- merged statistics ---------------------------------------------------

    @property
    def states_explored(self):
        return sum(r.states_explored for r in self.results.values())

    @property
    def transitions(self):
        return sum(r.transitions for r in self.results.values())

    @property
    def job_seconds(self):
        """Sum of per-job times (the serial-equivalent cost)."""
        return sum(r.elapsed for r in self.results.values())

    @property
    def violations(self):
        """Every job's violations, concatenated in submission order."""
        merged = []
        for result in self.results.values():
            merged.extend(result.violations)
        return merged

    @property
    def violated_property_ids(self):
        """Sorted union of violated property ids across all jobs."""
        ids = set()
        for result in self.results.values():
            ids.update(result.violated_property_ids)
        return sorted(ids)

    @property
    def has_violations(self):
        return any(r.has_violations for r in self.results.values())

    @property
    def cache_hits(self):
        return sum(r.cache_hits for r in self.results.values())

    @property
    def cache_misses(self):
        return sum(r.cache_misses for r in self.results.values())

    @property
    def cache_hit_rate(self):
        """Batch-wide successor-cache hit rate; 0.0 when no job answered
        any cache query (e.g. every run violated immediately at depth 0)."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    # -- serialization -------------------------------------------------------

    def to_dict(self):
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "verdict": "violated" if self.has_violations else (
                "error" if self.errors else "safe"),
            "workers": self.workers,
            "elapsed": self.elapsed,
            "job_seconds": self.job_seconds,
            "states_explored": self.states_explored,
            "transitions": self.transitions,
            "violated_property_ids": self.violated_property_ids,
            "results": {name: result.to_dict()
                        for name, result in self.results.items()},
            "errors": dict(self.errors),
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild a merged batch (and every per-job result) from JSON."""
        _check_schema(data, "BatchResult")
        batch = cls()
        for name, result_data in data.get("results", {}).items():
            batch.add(name, ExplorationResult.from_dict(result_data))
        for name, message in data.get("errors", {}).items():
            batch.add_error(name, message)
        batch.elapsed = data.get("elapsed", 0.0)
        batch.workers = data.get("workers", 1)
        return batch

    def to_json(self, indent=None):
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text):
        return cls.from_dict(json.loads(text))

    def summary(self):
        """Human-readable digest: batch totals plus one line per job."""
        lines = ["%d job(s) on %d worker(s): %d violation(s) of %d "
                 "property(ies); %d states, %d transitions; %.2fs wall "
                 "(%.2fs of job time)" % (
                     len(self.results), self.workers, len(self.violations),
                     len(self.violated_property_ids), self.states_explored,
                     self.transitions, self.elapsed, self.job_seconds)]
        if self.elapsed > 0:
            # distinct states per wall-clock second across the whole
            # batch: the figure scaling experiments quote, so the CLI
            # digest should surface it rather than leave it to awk
            lines.append("aggregate throughput: %d states/s over %d job(s)"
                         % (int(self.states_explored / self.elapsed),
                            len(self.results)))
        for name, result in self.results.items():
            lines.append("  %-28s %d violation(s), %d states, %.2fs"
                         % (name, len(result.counterexamples),
                            result.states_explored, result.elapsed))
        for name, message in self.errors.items():
            lines.append("  %-28s ERROR: %s" % (name, message))
        return "\n".join(lines)

    def __repr__(self):
        return "BatchResult(jobs=%d, violations=%d)" % (
            len(self.results), len(self.violations))
