"""Frontier abstractions: the open set of the bounded search.

A :class:`Frontier` owns the order in which discovered-but-unexpanded
search nodes are expanded.  The classic Spin-style search is depth-first
(a stack); breadth-first finds shortest counterexamples first; the
priority frontier lets a strategy steer the search (e.g. expand states
with pending cyber events before quiescent ones).
"""

import heapq
from collections import deque


class Frontier:
    """Interface: an ordered open set of search nodes."""

    def push(self, node):
        raise NotImplementedError

    def pop(self):
        raise NotImplementedError

    def steal(self, limit):
        """Drain up to ``limit`` nodes for a work lease, preferring the
        *smallest* remaining subtrees (the deepest nodes).  Shard
        ownership never moves with a lease, so every descendant a thief
        uncovers in foreign territory comes back as a handoff — leaf-depth
        nodes bound that backflow to a single expansion, while shallow
        nodes would migrate whole subtrees across the ownership map.
        Frontiers that cannot cheaply give work away may return ``[]``."""
        return []

    def __len__(self):
        raise NotImplementedError

    def __bool__(self):
        return len(self) > 0


class DepthFirstFrontier(Frontier):
    """LIFO stack: the classic bounded DFS (Algorithm 1 as implemented)."""

    def __init__(self):
        self._stack = []

    def push(self, node):
        self._stack.append(node)

    def pop(self):
        return self._stack.pop()

    def steal(self, limit):
        """Lease the stack top: the deepest nodes - near-leaf
        expansions whose children are at or close to the bound, so
        leasing them costs one expansion of backflow each.  (The stack
        *bottom* would hand out shallow roots of whole subtrees:
        measured at depth 4 that doubles cross-shard traffic as the
        thief drags the subtree through foreign territory.)"""
        taken = self._stack[-limit:]
        del self._stack[-limit:]
        return taken

    def __len__(self):
        return len(self._stack)


class BreadthFirstFrontier(Frontier):
    """FIFO deque: explores by depth layer; counterexamples are minimal."""

    def __init__(self):
        self._queue = deque()

    def push(self, node):
        self._queue.append(node)

    def pop(self):
        return self._queue.popleft()

    def steal(self, limit):
        """Lease the back of the queue: the most recently discovered
        (deepest) layer - the smallest subtrees, per the base
        contract."""
        taken = []
        while self._queue and len(taken) < limit:
            taken.append(self._queue.pop())
        return taken

    def __len__(self):
        return len(self._queue)


def default_priority(node):
    """Default priority: shallow states first, pending dispatches sooner.

    Draining pending cyber events early keeps the concurrent search close
    to quiescent states, where invariants are checked.
    """
    return (node.depth, -len(node.state.pending))


class PriorityFrontier(Frontier):
    """Best-first search over a user-supplied ``priority(node)`` key."""

    def __init__(self, priority=None):
        self._priority = priority or default_priority
        self._heap = []
        self._counter = 0

    def push(self, node):
        # the counter breaks priority ties FIFO and shields the heap from
        # comparing _Node objects
        self._counter += 1
        heapq.heappush(self._heap, (self._priority(node), self._counter, node))

    def pop(self):
        return heapq.heappop(self._heap)[2]

    def steal(self, limit):
        """Lease the worst-priority entries - the nodes this frontier
        would expand last; rebuilding the heap once is cheaper than
        ``limit`` * O(log n) worst-element deletions."""
        if not self._heap:
            return []
        self._heap.sort()
        taken = [entry[2] for entry in self._heap[-limit:]]
        del self._heap[-limit:]
        return taken

    def __len__(self):
        return len(self._heap)
