"""Frontier abstractions: the open set of the bounded search.

A :class:`Frontier` owns the order in which discovered-but-unexpanded
search nodes are expanded.  The classic Spin-style search is depth-first
(a stack); breadth-first finds shortest counterexamples first; the
priority frontier lets a strategy steer the search (e.g. expand states
with pending cyber events before quiescent ones).
"""

import heapq
from collections import deque


class Frontier:
    """Interface: an ordered open set of search nodes."""

    def push(self, node):
        raise NotImplementedError

    def pop(self):
        raise NotImplementedError

    def __len__(self):
        raise NotImplementedError

    def __bool__(self):
        return len(self) > 0


class DepthFirstFrontier(Frontier):
    """LIFO stack: the classic bounded DFS (Algorithm 1 as implemented)."""

    def __init__(self):
        self._stack = []

    def push(self, node):
        self._stack.append(node)

    def pop(self):
        return self._stack.pop()

    def __len__(self):
        return len(self._stack)


class BreadthFirstFrontier(Frontier):
    """FIFO deque: explores by depth layer; counterexamples are minimal."""

    def __init__(self):
        self._queue = deque()

    def push(self, node):
        self._queue.append(node)

    def pop(self):
        return self._queue.popleft()

    def __len__(self):
        return len(self._queue)


def default_priority(node):
    """Default priority: shallow states first, pending dispatches sooner.

    Draining pending cyber events early keeps the concurrent search close
    to quiescent states, where invariants are checked.
    """
    return (node.depth, -len(node.state.pending))


class PriorityFrontier(Frontier):
    """Best-first search over a user-supplied ``priority(node)`` key."""

    def __init__(self, priority=None):
        self._priority = priority or default_priority
        self._heap = []
        self._counter = 0

    def push(self, node):
        # the counter breaks priority ties FIFO and shields the heap from
        # comparing _Node objects
        self._counter += 1
        heapq.heappush(self._heap, (self._priority(node), self._counter, node))

    def pop(self):
        return heapq.heappop(self._heap)[2]

    def __len__(self):
        return len(self._heap)
