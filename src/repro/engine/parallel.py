"""Swarm exploration: sharding one verification run across processes.

The classic SPIN multi-core gap: ``verify_many`` scales *across*
independent jobs, but a single deep ``repro check`` still explores its
state space on one core.  This module partitions one run instead:

* **ownership by fingerprint** - every reachable state is owned by
  exactly one of N worker processes (``fingerprint % N``), so the
  distinct-state count and the depth-aware revisit semantics are
  preserved globally while each shard keeps its own frontier, visited
  store (exact / fingerprint / collapse all work unchanged), successor
  cache and sleep sets;
* **batched handoff** - successors owned by another shard travel in
  batches over multiprocessing queues, carrying their depth, sleep set
  and the full event prefix (labels + trace steps) so the receiving
  shard records violations with complete paths;
* **counting termination with a confirmation round** - workers report
  ``(idle, sent, received)`` snapshots to the parent; when every worker
  is idle and the global sent/received handoff counters agree, the
  parent holds the tentative verdict until every worker re-reports
  *after* that observation with unchanged counters (stale reports can
  balance spuriously - the classic distributed-termination pitfall);
  only the confirmed double-barrier guarantees nothing is buffered, in
  flight or unprocessed anywhere, i.e. the bounded space is exhausted;
* **deterministic traces** - shards report counterexamples as event
  sequences; the parent selects the canonical one per violation (the
  shortest path, ties broken by label order - the same rule the
  sequential recorder applies) and *replays* it on its own system, so
  the rendered trace is independent of shard scheduling races.

Sharding is a pure performance knob: verdicts, violation sets and the
canonical traces match the single-worker run, which is why
``EngineOptions.workers`` is excluded from the vetting service's content
digests.

Worker processes prefer the ``fork`` start method: children inherit the
parent's hash seed, which keeps :meth:`ModelState.fingerprint` - and
therefore state ownership - consistent across every shard.  Where only
``spawn`` exists the parent pins ``PYTHONHASHSEED`` for its children
instead.
"""

import os
import queue as _queue_mod
import time
import traceback

from repro.engine.core import (
    _NO_SLEEP,
    _Node,
    ExplorationEngine,
    path_order_key,
    replay_path,
)
from repro.engine.result import ExplorationResult

#: cross-shard handoffs per queue message (batching amortizes pickling)
HANDOFF_BATCH = 64
#: frontier nodes expanded between inbox polls
EXPAND_CHUNK = 256
#: transitions between unsolicited worker status reports
STATUS_EVERY = 4096
#: seconds a blocked worker waits on its inbox per poll
IDLE_POLL = 0.1


#: hard ceiling on shards per run: beyond this, per-shard queues and
#: model rebuilds cost more than any realistic core count returns, and
#: an unbounded request (e.g. through the service API) must never fork
#: the host to death
MAX_SHARD_WORKERS = 64


def default_shard_workers(requested=None):
    """Resolve a worker count: ``None``/0 means one shard per core;
    explicit requests are clamped to :data:`MAX_SHARD_WORKERS`."""
    if requested:
        return max(1, min(int(requested), MAX_SHARD_WORKERS))
    return max(1, min(os.cpu_count() or 1, MAX_SHARD_WORKERS))


def _mp_context():
    """A start-method context with cross-worker-consistent hashing.

    ``fork`` children inherit the parent's hash seed, so fingerprints
    (built on ``hash()``) agree across shards for free.  Under ``spawn``
    the children re-exec, so the parent pins ``PYTHONHASHSEED`` in the
    environment they inherit; :func:`explore_sharded` verifies agreement
    after the fact via each shard's reported root fingerprint.
    """
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork"), None
    return multiprocessing.get_context("spawn"), "0"


class _SeedNode(_Node):
    """A shard-local root for a state handed off by another shard.

    ``base_path`` is the event prefix (label + trace steps per level)
    that led to this state wherever it was discovered;
    :meth:`_Node.path` prepends it, so violations found below a seed
    report complete root-to-violation paths.
    """

    __slots__ = ("base_path",)

    def __init__(self, state, depth, base_path, sleep=None):
        super().__init__(state, depth, sleep=sleep)
        self.base_path = base_path


class _ShardEngine(ExplorationEngine):
    """One shard's search loop: the sequential engine plus routing.

    Reuses the parent class's transition generation (successor cache
    included), sleep-set propagation, violation recording and limit
    checks; only the admission step changes - successors owned by
    another shard are exported instead of explored.
    """

    #: shards report raw candidates; the parent canonicalizes once
    #: after the merge instead of every shard permuting its own
    canonicalize_traces = False

    def __init__(self, system, properties, options, worker_id, shards,
                 inbox, peer_queues, control, stop_event):
        super().__init__(system, properties, options)
        self.worker_id = worker_id
        self.shards = shards
        self.inbox = inbox
        self.peer_queues = peer_queues
        self.control = control
        #: the parent's stop broadcast.  Deliberately an Event, not an
        #: inbox message: a queue's cross-process writelock can be
        #: orphaned by a peer that exits while its feeder thread is
        #: blocked on a full pipe, and a stop that has to wait for that
        #: lock would deadlock the swarm - an Event has no lock to lose
        self.stop_event = stop_event
        #: peer id -> buffered handoffs awaiting a batched flush
        self._outbox = {peer: [] for peer in range(shards)
                        if peer != worker_id}
        self.sent = 0
        self.received = 0
        self._seq = 0
        self._last_status = None
        self._halted = False
        self._found = False
        self._last_distinct = 0

    # ------------------------------------------------------------------
    # the sharded search loop
    # ------------------------------------------------------------------

    def _run(self):
        result = self._result = ExplorationResult()
        self._started = time.monotonic()
        (self._visited, self._frontier, self._cache, self._reducer,
         self._matcher) = self._setup_search(result)
        # same graceful degradation as the sequential loop: third-party
        # stores without the O(1) counter fall back to fresh-equals-new
        self._count_distinct = getattr(self._visited, "distinct_count", None)

        root = self.system.initial_state()
        self._root_fp = root.fingerprint()
        if self._root_fp % self.shards == self.worker_id:
            self._admit(root, 0,
                        _NO_SLEEP if self._reducer is not None else None, ())

        while not self.stop_event.is_set():
            progressed = self._poll_inbox(block=False)
            if self._frontier and not self._halted:
                self._expand_chunk()
                continue
            if progressed:
                continue
            # locally exhausted: flush partial batches, report idle and
            # wait for more work or the stop broadcast.  The idle report
            # repeats once per empty poll (``force``): the parent's
            # termination confirmation round needs a fresh post-decision
            # report from every worker, not just a deduplicated one
            self._flush_outboxes()
            self._send_status(idle=True, force=True)
            self._poll_inbox(block=True)
        return self._finish_shard()

    def _expand_chunk(self):
        """Expand up to :data:`EXPAND_CHUNK` nodes, routing successors."""
        result = self._result
        options = self.options
        frontier = self._frontier
        status_mark = result.transitions
        for _ in range(EXPAND_CHUNK):
            if not frontier or self._halted:
                break
            if self._limits_hit(result, self._started):
                self._halt()
                break
            node = frontier.pop()
            expanded_keys = [] if self._reducer is not None else None
            #: root-to-node event prefix, shared by every export from
            #: this node (computed on the first foreign-owned successor)
            node_path = None
            for transition in self._node_transitions(node, self._cache,
                                                     self._reducer, result):
                label, new_state, consumed, violations, steps = transition
                result.transitions += 1
                depth = node.depth + (1 if consumed else 0)
                child_sleep = None
                if self._reducer is not None:
                    child_sleep = self._child_sleep(node, self._reducer,
                                                    label, expanded_keys)
                if violations:
                    child = _Node(new_state, depth, parent=node, label=label,
                                  steps=steps, sleep=child_sleep)
                    self._record(result, child, violations)
                    if options.stop_on_first:
                        self._found = True
                        self._halt()
                        break
                if depth <= options.max_events:
                    owner = new_state.fingerprint() % self.shards
                    if owner == self.worker_id:
                        self._admit_child(node, label, steps, new_state,
                                          depth, child_sleep)
                    else:
                        if node_path is None:
                            node_path = node.path()
                        self._export(owner, node_path, label, steps,
                                     new_state, depth, child_sleep)
                if self._cheap_limits_hit(result):
                    self._halt()
                    break
        if result.transitions - status_mark or self._halted:
            if (result.transitions // STATUS_EVERY
                    != status_mark // STATUS_EVERY) or self._halted:
                self._send_status(idle=False)

    def _visit(self, state, depth, sleep):
        """Shared visited/matcher bookkeeping; ``(fresh, sleep, is_new)``.

        ``is_new`` is the distinct-state signal (same accounting as the
        sequential engine: depth-improved revisits re-expand without
        re-counting), so the summed shard counts equal the single-worker
        ``states_explored``.
        """
        if self._matcher is None:
            fresh = not self._visited.seen_state(state, depth)
            is_new = fresh
            if fresh and self._count_distinct is not None:
                # a pruned revisit can never have grown the store
                now = self._count_distinct()
                is_new = now > self._last_distinct
                self._last_distinct = now
            return fresh, sleep, is_new
        pruned, sleep, is_new = self._matcher.seen_state(
            state, depth, sleep if sleep is not None else _NO_SLEEP)
        return not pruned, sleep, is_new

    def _admit_child(self, node, label, steps, state, depth, sleep):
        """Local admission of a successor this shard owns (the engine's
        child-admission block, minus the violation half already done)."""
        fresh, sleep, is_new = self._visit(state, depth, sleep)
        if not fresh:
            return
        if is_new:
            self._result.states_explored += 1
        if depth < self.options.max_events or state.pending:
            child = _Node(state, depth, parent=node, label=label,
                          steps=steps, sleep=sleep)
            self._frontier.push(child)

    def _admit(self, state, depth, sleep, base_path):
        """Admission of a state arriving over the wire (or the root)."""
        fresh, sleep, is_new = self._visit(state, depth, sleep)
        if not fresh:
            return
        if is_new:
            self._result.states_explored += 1
        if depth < self.options.max_events or state.pending:
            self._frontier.push(_SeedNode(state, depth, tuple(base_path),
                                          sleep=sleep))

    def _export(self, owner, node_path, label, steps, state, depth, sleep):
        """Buffer one handoff; the shared per-node prefix is extended
        with this transition's (label, steps) tail only."""
        path = list(node_path)
        path.append((label, list(steps)))
        buffered = self._outbox[owner]
        buffered.append((state, depth, sleep, path))
        if len(buffered) >= HANDOFF_BATCH:
            self._flush_peer(owner)

    def _flush_peer(self, owner):
        buffered = self._outbox[owner]
        if not buffered:
            return
        self.peer_queues[owner].put(("states", buffered))
        self.sent += len(buffered)
        self._outbox[owner] = []

    def _flush_outboxes(self):
        for peer in self._outbox:
            self._flush_peer(peer)

    # ------------------------------------------------------------------
    # inbox + control plumbing
    # ------------------------------------------------------------------

    def _poll_inbox(self, block):
        """Drain available inbox messages; True when any state arrived."""
        progressed = False
        while True:
            try:
                message = self.inbox.get(timeout=IDLE_POLL if block else 0)
            except _queue_mod.Empty:
                return progressed
            kind = message[0]
            if kind == "states":
                batch = message[1]
                self.received += len(batch)
                if not self._halted:
                    for state, depth, sleep, path in batch:
                        self._admit(state, depth, sleep, path)
                progressed = True
            # drain the rest without waiting; the stop broadcast is an
            # Event checked by the main loop, never an inbox message
            block = False

    def _halt(self):
        """Stop expanding (limit hit / first violation) but keep
        draining the inbox so peers and the parent never stall."""
        self._halted = True

    def _send_status(self, idle, force=False):
        snapshot = (idle, self.sent, self.received,
                    self._result.states_explored, self._result.transitions,
                    self._found, self._result.truncated)
        if snapshot == self._last_status and not force:
            return
        self._last_status = snapshot
        self._seq += 1
        self.control.put(("status", self.worker_id, self._seq) + snapshot)

    def _finish_shard(self):
        return self._finish(self._result, self._visited, self._cache,
                            self._started)


def _worker_main(worker_id, shards, job, queues, control, stop_event):
    """Process entry point of one shard."""
    from repro.engine.batch import build_job_context

    kill = os.environ.get("REPRO_SHARD_TEST_KILL")
    if kill is not None and kill.strip().isdigit() \
            and int(kill) == worker_id:
        # deterministic crash hook for the degradation tests: die before
        # reporting anything, exactly like a hard worker crash would
        os._exit(17)

    inbox = queues[worker_id]
    try:
        system, properties = build_job_context(job)
        engine = _ShardEngine(system, properties, job.options, worker_id,
                              shards, inbox, queues, control, stop_event)
        result = engine.run()
        payload = {
            "result": result.to_dict(),
            "sent": engine.sent,
            "received": engine.received,
            "root_fp": engine._root_fp,
        }
        control.put(("result", worker_id, payload))
    except Exception:
        control.put(("error", worker_id, traceback.format_exc()))
    finally:
        # exit must never hang on undelivered handoffs: receivers may
        # already be gone, and the data is meaningless after stop
        for peer, peer_queue in enumerate(queues):
            if peer != worker_id:
                peer_queue.cancel_join_thread()
        try:  # drain what peers managed to enqueue, unblocking their feeders
            while True:
                inbox.get_nowait()
        except (_queue_mod.Empty, OSError):
            pass


# ---------------------------------------------------------------------------
# parent-side orchestration
# ---------------------------------------------------------------------------


class ShardError(RuntimeError):
    """The sharded run's results would be unsound (soundness errors
    only: worker *crashes* degrade gracefully into a truncated result
    with a ``shard_failure`` record instead of raising)."""


def explore_sharded(job, workers=None, keep_replay_system=False):
    """Verify one job with a sharded multi-process search.

    ``job`` is a picklable :class:`~repro.engine.batch.VerificationJob`
    (the same contract as ``verify_many``: workers rebuild the system
    from the declarative description).  Returns a merged
    :class:`~repro.engine.result.ExplorationResult` whose verdict,
    violation set and counterexample traces match the single-worker
    run; ``workers``/``shard_stats`` carry the per-shard accounting.

    ``keep_replay_system=True`` attaches the system the canonical trace
    replay ran against as ``result.replay_system``, so an in-process
    caller rendering traces need not build another one.  Off by
    default: a bound system does not pickle, and batch/service runs
    ship results across process boundaries.
    """
    from repro.engine.batch import _warm_registries, build_job_context

    workers = default_shard_workers(workers or job.options.workers)
    if workers <= 1:
        from repro.engine.batch import execute_job_inline
        return execute_job_inline(job)

    ctx, hash_seed = _mp_context()
    _warm_registries([job])  # fork children inherit the parsed corpus
    queues = [ctx.Queue() for _ in range(workers)]
    control = ctx.Queue()
    stop_event = ctx.Event()
    restore_seed = _pin_hash_seed(hash_seed)
    try:
        procs = [ctx.Process(target=_worker_main,
                             args=(wid, workers, job, queues, control,
                                   stop_event),
                             daemon=True, name="repro-shard-%d" % wid)
                 for wid in range(workers)]
        for proc in procs:
            proc.start()
    finally:
        if restore_seed is not None:
            restore_seed()

    started = time.monotonic()
    try:
        payloads, stop_reason, failure = _coordinate(
            job.options, workers, stop_event, control, procs, started)
    except BaseException:
        stop_event.set()  # no worker may outlive a coordination error
        _shutdown(procs, queues, control)
        raise
    stop_event.set()
    if failure is not None:
        # Handoffs parked in a dead shard's inbox cannot be requeued:
        # state ownership is a static ``fingerprint % N``, so no
        # surviving worker may explore them, and the sent/received
        # termination counters could never balance again anyway.  Drain
        # and count them instead, so the failure record quantifies the
        # lost frontier.
        failure["lost_handoffs"] = sum(
            _drain_lost_handoffs(queues[wid]) for wid in failure["workers"])
    _shutdown(procs, queues, control)

    merged, candidates = _merge_shards(payloads, workers)
    if failure is not None:
        merged.shard_failure = failure
    if stop_reason is not None and not merged.truncated:
        merged.truncated = True
        merged.truncated_reason = stop_reason
    replay_system = _rebuild_counterexamples(job, merged, candidates)
    if keep_replay_system:
        merged.replay_system = replay_system
    # stamped after the trace rebuild: the canonical replay is part of
    # the sharded run's cost, and states/sec must not hide it
    merged.elapsed = time.monotonic() - started
    return merged


def _pin_hash_seed(hash_seed):
    """Pin ``PYTHONHASHSEED`` for spawn children; returns the undo."""
    if hash_seed is None:
        return None
    previous = os.environ.get("PYTHONHASHSEED")
    os.environ["PYTHONHASHSEED"] = hash_seed

    def restore():
        if previous is None:
            os.environ.pop("PYTHONHASHSEED", None)
        else:
            os.environ["PYTHONHASHSEED"] = previous

    return restore


def _coordinate(options, workers, stop_event, control, procs, started):
    """The parent's event loop: statuses in, one stop decision out.

    Exhaustive termination needs two barriers.  The *tentative* verdict
    fires when every worker's latest report says idle and the summed
    sent/received handoff counters agree.  Reports are stale snapshots,
    though: a worker may have woken on a late handoff and be flushing
    new work that neither counter reflects yet, so a lone balanced
    observation can be spurious (the classic pitfall of naive counting
    termination detection).  The parent therefore *confirms*: it stops
    only once every worker has reported again - strictly after the
    tentative observation - still idle with unchanged counters.  Any
    counter movement in between cancels the confirmation.  A send after
    a worker's first report would change its counters; a receipt
    implies such a send; so double-barrier equality proves nothing is
    buffered, in flight or unprocessed anywhere.

    Global limits (state/transition counts aggregated across shards,
    the wall clock) and ``stop_on_first`` route through the same stop
    broadcast without confirmation - they do not claim exhaustiveness.

    Worker failures - a reported exception or a process found dead
    twice without a result - degrade gracefully: the swarm is stopped,
    surviving shards flush their partial results, and the failure is
    returned as a structured record instead of raised, so callers get
    a typed ``shard_failure`` on the merged result rather than a stack
    trace.  Returns ``(per-worker result payloads, stop reason,
    failure-record-or-None)``.
    """
    statuses = {}   # wid -> (seq, snapshot)
    payloads = {}
    failed = {}     # wid -> exit code (None when the worker reported
                    # an exception and exited normally)
    detail = None   # first reported traceback, if any
    stop_reason = None
    #: wid -> (seq, sent, received) at the tentative balanced
    #: observation; None when no confirmation round is open
    confirming = None
    confirmed = set()
    suspects = set()
    next_liveness = time.monotonic() + 1.0

    def broadcast_stop(reason):
        nonlocal stop_reason
        if not stop_event.is_set():
            stop_reason = reason
            stop_event.set()

    while len(payloads) + len(failed) < workers:
        now = time.monotonic()
        if now >= next_liveness:
            next_liveness = now + 1.0
            # a worker flushes its result before exiting, so a dead
            # worker without one is a crash; requiring two sweeps ~1s
            # apart bridges the flush-visible-to-exit-visible race
            suspects = _check_liveness(procs, payloads, failed, suspects,
                                       broadcast_stop)
        try:
            message = control.get(timeout=IDLE_POLL)
        except _queue_mod.Empty:
            if not stop_event.is_set() and _time_limit_exceeded(options,
                                                                started):
                broadcast_stop("time_limit")
            continue
        kind = message[0]
        if kind == "result":
            payloads[message[1]] = message[2]
            continue
        if kind == "error":
            failed.setdefault(message[1], None)
            if detail is None:
                detail = message[2]
            broadcast_stop("shard_failure")
            continue
        if kind == "status":
            statuses[message[1]] = (message[2], message[3:])
        if stop_event.is_set():
            continue
        if _time_limit_exceeded(options, started):
            broadcast_stop("time_limit")
            continue
        snapshots = {wid: entry[1] for wid, entry in statuses.items()}
        reason = _limits_tripped(options, snapshots)
        if reason is not None:
            broadcast_stop(reason)
            continue
        if options.stop_on_first and any(s[5] for s in snapshots.values()):
            broadcast_stop(None)
            continue
        balanced = (len(statuses) == workers
                    and all(s[0] for s in snapshots.values())
                    and sum(s[1] for s in snapshots.values())
                    == sum(s[2] for s in snapshots.values()))
        if not balanced:
            confirming = None
            continue
        if confirming is None:
            confirming = {wid: (seq, snap[1], snap[2])
                          for wid, (seq, snap) in statuses.items()}
            confirmed = set()
            continue
        wid = message[1]
        seq, snap = statuses[wid]
        first_seq, first_sent, first_received = confirming[wid]
        if (snap[0], snap[1], snap[2]) != (True, first_sent, first_received):
            # counters moved (or the worker woke): the balance was a
            # stale mirage; re-arm from scratch
            confirming = None
            continue
        if seq > first_seq:
            confirmed.add(wid)
            if len(confirmed) == workers:
                broadcast_stop(None)
    failure = None
    if failed:
        failure = {"workers": sorted(failed),
                   "exitcodes": [failed[wid] for wid in sorted(failed)],
                   "detail": detail}
    return payloads, stop_reason, failure


def _time_limit_exceeded(options, started):
    return (options.time_limit
            and time.monotonic() - started > options.time_limit)


def _limits_tripped(options, statuses):
    """A global limit reached by the *aggregate* shard counters."""
    states = sum(s[3] for s in statuses.values())
    transitions = sum(s[4] for s in statuses.values())
    if options.max_states and states >= options.max_states:
        return "max_states"
    if options.max_transitions and transitions >= options.max_transitions:
        return "max_transitions"
    if any(s[6] for s in statuses.values()):  # a shard-local backstop hit
        return "max_states"
    return None


def _check_liveness(procs, payloads, failed, suspects, broadcast_stop):
    """Crash detection: returns the new suspect set.

    A dead worker without a result is suspicious once and *failed*
    twice - the worker's exit joins its control-queue feeder, so by the
    second sweep (~1s later) a legitimately finished worker's result
    would have been read from the control queue already.  Twice-
    suspected workers are recorded in ``failed`` (with their exit
    codes) and the swarm is stopped; the coordinator then collects the
    surviving shards' partial results instead of raising.
    """
    dead = {wid for wid, proc in enumerate(procs)
            if wid not in payloads and wid not in failed
            and not proc.is_alive()}
    repeat = dead & suspects
    if repeat:
        for wid in sorted(repeat):
            failed[wid] = procs[wid].exitcode
        broadcast_stop("shard_failure")
    return dead - set(failed)


def _drain_lost_handoffs(inbox):
    """Count the cross-shard states parked in a dead worker's inbox.

    Best effort: peers that exited mid-send may have dropped batches on
    the floor already (their queue feeders are cancelled on exit), so
    this is a lower bound on the lost frontier.
    """
    lost = 0
    try:
        while True:
            message = inbox.get_nowait()
            if message[0] == "states":
                lost += len(message[1])
    except (_queue_mod.Empty, OSError, ValueError):
        pass
    return lost


def _shutdown(procs, queues, control):
    for proc in procs:
        proc.join(timeout=10.0)
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5.0)
    for peer_queue in queues:
        peer_queue.cancel_join_thread()
        peer_queue.close()
    control.cancel_join_thread()
    control.close()


# ---------------------------------------------------------------------------
# merging + deterministic trace reconstruction
# ---------------------------------------------------------------------------


def _merge_shards(payloads, workers):
    """Sum shard statistics into one result; collect trace candidates."""
    merged = ExplorationResult()
    merged.workers = workers
    candidates = []
    root_fps = set()
    visited_stored = 0
    visited_bytes = 0
    for wid in sorted(payloads):
        payload = payloads[wid]
        shard = ExplorationResult.from_dict(payload["result"])
        root_fps.add(payload.get("root_fp"))
        merged.states_explored += shard.states_explored
        merged.transitions += shard.transitions
        merged.cache_hits += shard.cache_hits
        merged.cache_misses += shard.cache_misses
        merged.cache_auto_disabled |= shard.cache_auto_disabled
        if merged.cache_disable_reason is None:
            merged.cache_disable_reason = shard.cache_disable_reason
        for phase, seconds in shard.profile.items():
            # summed across shards: aggregate worker time per phase
            merged.profile[phase] = merged.profile.get(phase, 0.0) + seconds
        merged.commutes_pruned += shard.commutes_pruned
        if shard.cache_mode != "off":
            merged.cache_mode = shard.cache_mode
        if shard.truncated and not merged.truncated:
            merged.truncated = True
            merged.truncated_reason = shard.truncated_reason
        visited_stored += shard.visited_stats.get("stored", 0)
        visited_bytes += shard.visited_stats.get("approx_bytes", 0)
        for key, value in shard.property_stats.items():
            if isinstance(value, (int, float)):
                merged.property_stats[key] = (
                    merged.property_stats.get(key, 0) + value)
        merged.shard_stats.append({
            "worker": wid,
            "states_explored": shard.states_explored,
            "transitions": shard.transitions,
            "handoffs_sent": payload.get("sent", 0),
            "handoffs_received": payload.get("received", 0),
            "cache_hits": shard.cache_hits,
            "cache_misses": shard.cache_misses,
            "commutes_pruned": shard.commutes_pruned,
            "visited_stats": dict(shard.visited_stats),
        })
        candidates.extend(shard.counterexamples.values())
    if len(root_fps) > 1:
        raise ShardError(
            "shards disagree on the root fingerprint (%s): state ownership "
            "was inconsistent, results are unsound - the worker start "
            "method must give every shard the same hash seed" % root_fps)
    merged.visited_stats = {
        "stored": visited_stored,
        "approx_bytes": visited_bytes,
        "bytes_per_state": (round(visited_bytes / visited_stored, 1)
                            if visited_stored else 0.0),
    }
    return merged, candidates


def _rebuild_counterexamples(job, merged, candidates):
    """Replay the canonical violating paths in the parent process.

    Shard-reported counterexamples are complete, but which shard found a
    given violation first - and through which of several equal-length
    commuting prefixes - is a scheduling race.  The parent therefore
    replays each candidate event sequence on its own freshly built
    system, records the violations through the engine's canonical-
    minimum recorder, and then runs the shared trace canonicalization
    (permutation replay), so the rendered traces are a function of the
    state space alone - byte-identical to the single-worker run's.

    Returns the replay system (None when there was nothing to replay)
    so callers that render traces need not build yet another one.
    """
    if not candidates:
        return None
    from repro.engine.batch import build_job_context

    system, properties = build_job_context(job)
    engine = ExplorationEngine(system, properties, job.options)
    engine.system.use_compiled = job.options.compiled
    if job.options.engine == "codegen":
        # replay through the same generated executors the shards ran
        # (regenerated from the digest-keyed source cache, not pickled)
        from repro.model.codegen import CodegenPlan

        plan = CodegenPlan(engine.system,
                           cache_dir=job.options.codegen_cache)
        engine.system.executor_factory = plan.executor_factory
    paths = {}
    for candidate in candidates:
        paths.setdefault(tuple(candidate.event_labels()), candidate)
    for labels in sorted(paths, key=lambda L: (len(L), L)):
        replayed = replay_path(engine, labels)
        if replayed is None:
            _fallback_record(merged, paths[labels])
            continue
        node, violations = replayed
        engine._record(merged, node, violations)
    # safety net: a replay must never *lose* a violation a shard proved
    for candidate in candidates:
        if candidate.violation.dedup_key() not in merged.counterexamples:
            _fallback_record(merged, candidate)
    engine._canonicalize_traces(merged)
    return system


def _fallback_record(merged, candidate):
    key = candidate.violation.dedup_key()
    existing = merged.counterexamples.get(key)
    if (existing is None
            or path_order_key(candidate.path) < path_order_key(existing.path)):
        merged.counterexamples[key] = candidate
