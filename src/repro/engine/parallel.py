"""Swarm exploration: sharding one verification run across processes.

The classic SPIN multi-core gap: ``verify_many`` scales *across*
independent jobs, but a single deep ``repro check`` still explores its
state space on one core.  This module partitions one run instead:

* **pluggable ownership** - every reachable state is owned by exactly
  one of N worker processes, so the distinct-state count and the
  depth-aware revisit semantics are preserved globally while each shard
  keeps its own frontier, visited store (exact / fingerprint / collapse
  all work unchanged), successor cache and sleep sets.  The owner map
  is a :mod:`repro.engine.partition` strategy: ``fingerprint`` (the
  balanced zero-locality baseline) or ``locality`` (the default - a
  stable projection of the packed slot grid that keeps successor
  chains shard-local);
* **delta-encoded handoff** - a successor owned by another shard ships
  as a packed-slot delta against the shared initial state plus an app
  overlay, its depth, sleep set and a *skeleton* event prefix (labels
  plus only the command/mode steps violation attribution reads) -
  never a full state pickle, never a full TraceStep path.  Batches are
  pickled once per flush and their wire bytes are accounted
  (``handoff_bytes``); full traces are reconstructed on the parent by
  replay during trace canonicalization;
* **bounded work stealing with ownership leases** - an idle shard asks
  a peer for work instead of idling through the run; a loaded victim
  leases it a bounded slice from the cold end of its frontier over the
  same delta wire format.  Leases ride the sent/received counters, so
  counting termination stays exact; ownership itself never moves -
  dedup responsibility for a leased node's successors stays with their
  owners, which is what keeps stealing sound (and why it is bounded:
  work done off-owner pays for itself in extra handoffs);
* **counting termination with a confirmation round** - workers report
  ``(idle, sent, received)`` snapshots to the parent; when every worker
  is idle and the global sent/received counters agree, the parent
  holds the tentative verdict until every worker re-reports *after*
  that observation with unchanged counters (stale reports can balance
  spuriously - the classic distributed-termination pitfall); only the
  confirmed double-barrier guarantees nothing is buffered, in flight
  or unprocessed anywhere, i.e. the bounded space is exhausted.  Steal
  requests carry no work and are deliberately uncounted; idle and
  halted workers never grant leases, so no request in flight during a
  confirmation round can produce a send;
* **deterministic traces** - shards report counterexamples as event
  sequences; the parent selects the canonical one per violation (the
  shortest path, ties broken by label order - the same rule the
  sequential recorder applies) and *replays* it on its own system, so
  the rendered trace is independent of shard scheduling races.

Sharding is a pure performance knob: verdicts, violation sets and the
canonical traces match the single-worker run, which is why
``EngineOptions.workers`` and ``EngineOptions.partition`` are excluded
from the vetting service's content digests.

Worker processes prefer the ``fork`` start method: children inherit the
parent's hash seed, which keeps :meth:`ModelState.fingerprint` - and
therefore fingerprint-partitioned ownership - consistent across every
shard.  Where only ``spawn`` exists the parent pins ``PYTHONHASHSEED``
for its children instead.  (The locality partitioner hashes
deterministically and does not depend on the seed at all.)
"""

import os
import pickle
import queue as _queue_mod
import time
import traceback

from repro.checker.violations import TraceStep
from repro.engine.core import (
    _NO_SLEEP,
    _Node,
    ExplorationEngine,
    path_order_key,
    replay_path,
)
from repro.engine.partition import make_partitioner
from repro.engine.result import ExplorationResult

#: cross-shard handoffs per queue message (batching amortizes pickling)
HANDOFF_BATCH = 64
#: frontier nodes expanded between inbox polls
EXPAND_CHUNK = 256
#: transitions between unsolicited worker status reports
STATUS_EVERY = 4096
#: seconds a blocked worker waits on its inbox per poll
IDLE_POLL = 0.1
#: a victim grants a lease only while its frontier holds more than this
#: many nodes: a near-empty frontier is cheaper to finish than to ship
STEAL_MIN = 64
#: nodes per ownership lease: work stealing is *bounded* because every
#: node expanded off-owner exports its foreign successors back, so big
#: leases on an imbalanced run buy idle-time back at a handoff premium
STEAL_BATCH = 32
#: steal-request backoff ceiling (seconds): a starved shard's first
#: request goes out after one idle poll and the interval doubles while
#: no owned work arrives, so a structurally starved shard (a skewed
#: ownership map, or more shards than cores) leases occasionally
#: instead of turning the victim's whole frontier into wire traffic
STEAL_BACKOFF_MAX = 3.2

_WIRE_PICKLE = pickle.HIGHEST_PROTOCOL


#: hard ceiling on shards per run: beyond this, per-shard queues and
#: model rebuilds cost more than any realistic core count returns, and
#: an unbounded request (e.g. through the service API) must never fork
#: the host to death
MAX_SHARD_WORKERS = 64


def default_shard_workers(requested=None):
    """Resolve a worker count: ``None``/0 means one shard per core;
    explicit requests are clamped to :data:`MAX_SHARD_WORKERS`."""
    if requested:
        return max(1, min(int(requested), MAX_SHARD_WORKERS))
    return max(1, min(os.cpu_count() or 1, MAX_SHARD_WORKERS))


def _mp_context():
    """A start-method context with cross-worker-consistent hashing.

    ``fork`` children inherit the parent's hash seed, so fingerprints
    (built on ``hash()``) agree across shards for free.  Under ``spawn``
    the children re-exec, so the parent pins ``PYTHONHASHSEED`` in the
    environment they inherit; :func:`explore_sharded` verifies agreement
    after the fact via each shard's reported root fingerprint.
    """
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork"), None
    return multiprocessing.get_context("spawn"), "0"


def _skeleton_steps(steps):
    """The attribution skeleton of one cascade's steps.

    Keeps exactly what violation dedup keys read (the same filter as
    the codegen lean relation): command/mode steps with an acting app.
    Idempotent, so re-exporting an already-skeletal prefix is a no-op.
    """
    return tuple(TraceStep(step.kind, step.text, app=step.app)
                 for step in steps
                 if step.app is not None
                 and (step.kind == "command" or step.kind == "mode"))


class _HandoffCodec:
    """Delta wire format for states crossing a shard boundary.

    Every shard builds the same initial state from the job description,
    so its packed form is a shared implicit dictionary: a crossing
    state ships as the :meth:`StateSchema.delta` edit list against that
    base (apps excluded) plus a raw app-state overlay of just the apps
    that differ.  App maps are overlaid raw - live dicts, outside the
    schema's frozen canonical form - because the receiver's exploration
    must keep mutating them, and thawing a frozen block is ambiguous.

    One wire unit is::

        (delta, app_overlay, removed_apps, history, time, depth, sleep,
         prefix)

    where ``prefix`` is the skeleton event path (see
    :func:`_skeleton_steps`) and ``history``/``sleep`` are None in the
    common empty cases.  :meth:`decode` rebuilds a live state that is
    canonically equal to the encoded one: base-inherited app maps are
    shared copy-on-write against the codec's private base copy, exactly
    like a :meth:`ModelState.copy` branch.
    """

    #: packed components carrying app state (shipped via the overlay)
    _APP_COMPONENTS = (3, 4)

    def __init__(self, system):
        from repro.model.state import _copy_value

        self.schema = system.state_schema()
        base = system.initial_state()
        packed = self.schema.pack(base)
        #: the shared delta base: the initial state's packed form with
        #: the app sections blanked (apps travel in the overlay)
        self.base_packed = (packed[0], packed[1], packed[2], (), (),
                            packed[5], packed[6], packed[7])
        #: private deep copy of the initial app-state maps; handed to
        #: decoded states as COW-shared references, never mutated here
        self.base_apps = {name: _copy_value(mapping)
                          for name, mapping in base._app_states.items()}

    def encode(self, state, depth, sleep, prefix):
        """One crossing state as a compact wire unit: the packed-slot
        delta vs the shared initial state (app components carried
        separately as a changed-maps overlay + removed-names tuple),
        device history, clock, search depth, sleep set and the
        skeleton event prefix."""
        packed = self.schema.pack(state)
        delta = tuple(entry for entry in
                      self.schema.delta(self.base_packed, packed)
                      if entry[0] not in self._APP_COMPONENTS)
        overlay = {}
        removed = ()
        base_apps = self.base_apps
        apps = state._app_states
        for name, mapping in apps.items():
            if base_apps.get(name) != mapping:
                overlay[name] = mapping
        if len(apps) - len(overlay) != len(base_apps) - len(
                [name for name in overlay if name in base_apps]):
            removed = tuple(sorted(name for name in base_apps
                                   if name not in apps))
        history = state._history or None
        return (delta, overlay, removed, history, state.time, depth,
                sleep, prefix)

    def decode(self, unit):
        """Rebuild a full :class:`ModelState` from a wire unit,
        COW-sharing the unchanged base app maps so decoding costs only
        the delta."""
        (delta, overlay, removed, history, time_, depth, sleep,
         prefix) = unit
        packed = self.schema.apply_delta(self.base_packed, delta)
        state = self.schema.unpack(packed, time=time_)
        apps = {}
        shared = set()
        for name, mapping in self.base_apps.items():
            if name in overlay or name in removed:
                continue
            # COW-share the codec's base copy; the first mutation (or
            # branch) copies it, exactly like a state-to-state share
            apps[name] = mapping
            shared.add(name)
        apps.update(overlay)  # unpickled fresh: exclusively owned
        state._app_states = apps
        state._shared_apps = shared
        state._dirty_apps = set(apps)
        if history:
            # direct slot assignment: the ``history`` property setter
            # would mark the map escaped and force deep copies on every
            # branch below this state
            state._history = history
            state._history_shared = False
        return state, depth, sleep, prefix


class _SeedNode(_Node):
    """A shard-local root for a state handed off by another shard.

    ``base_path`` is the skeleton event prefix (label + attribution
    steps per level) that led to this state wherever it was discovered;
    :meth:`_Node.path` prepends it, so violations found below a seed
    report paths with exact dedup keys (the parent replays the labels
    for the full human-readable trace).
    """

    __slots__ = ("base_path",)

    def __init__(self, state, depth, base_path, sleep=None):
        super().__init__(state, depth, sleep=sleep)
        self.base_path = base_path


class _ShardEngine(ExplorationEngine):
    """One shard's search loop: the sequential engine plus routing.

    Reuses the parent class's transition generation (successor cache
    included), sleep-set propagation, violation recording and limit
    checks; only the admission step changes - successors owned by
    another shard are exported instead of explored.
    """

    #: shards report raw candidates; the parent canonicalizes once
    #: after the merge instead of every shard permuting its own
    canonicalize_traces = False

    #: cross-shard dedup makes cache hits structurally rare, so the
    #: watchdog judges the successor cache from the first rolling
    #: window instead of burning a warmup's worth of pinned successors
    cache_grace_warmup = False

    def _open_telemetry(self):
        """Shards never open the sink/meter/board themselves: the parent
        owns them for the whole run, and workers forward compact
        snapshots over the control queue (:meth:`_send_status`)."""
        return None

    def __init__(self, system, properties, options, worker_id, shards,
                 inbox, peer_queues, control, stop_event):
        super().__init__(system, properties, options)
        self.worker_id = worker_id
        self.shards = shards
        self.inbox = inbox
        self.peer_queues = peer_queues
        self.control = control
        #: the parent's stop broadcast.  Deliberately an Event, not an
        #: inbox message: a queue's cross-process writelock can be
        #: orphaned by a peer that exits while its feeder thread is
        #: blocked on a full pipe, and a stop that has to wait for that
        #: lock would deadlock the swarm - an Event has no lock to lose
        self.stop_event = stop_event
        self.partitioner = make_partitioner(options.partition, system,
                                            shards)
        self.codec = _HandoffCodec(system)
        #: peer id -> buffered wire units awaiting a batched flush
        self._outbox = {peer: [] for peer in range(shards)
                        if peer != worker_id}
        #: fingerprint -> (min exported depth, sleep intersection):
        #: sender-side dedup mirroring the receiver's prune conditions,
        #: so re-discovering an already-shipped state exports nothing
        self._exported = {}
        self.sent = 0
        self.received = 0
        self.handoff_bytes = 0
        self.steals = 0
        self.stolen_states = 0
        self._steal_cursor = worker_id
        self._steal_backoff = IDLE_POLL
        self._next_steal_at = 0.0
        self._seq = 0
        self._last_status = None
        telemetry = getattr(options, "telemetry", None)
        #: forward progress snapshots to the parent's telemetry session
        #: (piggybacked on the status cadence, sent only on real change)
        self._telemetry_on = telemetry is not None and telemetry.enabled
        self._halted = False
        self._found = False
        self._last_distinct = 0
        self._root_owner = False

    # ------------------------------------------------------------------
    # the sharded search loop
    # ------------------------------------------------------------------

    def _run(self):
        result = self._result = ExplorationResult()
        self._started = time.monotonic()
        (self._visited, self._frontier, self._cache, self._reducer,
         self._matcher) = self._setup_search(result)
        # same graceful degradation as the sequential loop: third-party
        # stores without the O(1) counter fall back to fresh-equals-new
        self._count_distinct = getattr(self._visited, "distinct_count", None)

        root = self.system.initial_state()
        self._root_fp = root.fingerprint()
        self._root_owner = self.partitioner.owner(root) == self.worker_id
        if self._root_owner:
            self._admit(root, 0,
                        _NO_SLEEP if self._reducer is not None else None, ())

        while not self.stop_event.is_set():
            progressed = self._poll_inbox(block=False)
            if self._frontier and not self._halted:
                self._expand_chunk()
                continue
            if progressed:
                continue
            # locally exhausted: flush partial batches, report idle and
            # wait for more work or the stop broadcast.  The idle report
            # repeats once per empty poll (``force``): the parent's
            # termination confirmation round needs a fresh post-decision
            # report from every worker, not just a deduplicated one
            self._flush_outboxes()
            self._send_status(idle=True, force=True)
            self._request_steal()
            self._poll_inbox(block=True)
        return self._finish_shard()

    def _expand_chunk(self):
        """Expand up to :data:`EXPAND_CHUNK` nodes, routing successors."""
        result = self._result
        options = self.options
        frontier = self._frontier
        owner_of = self.partitioner.owner
        status_mark = result.transitions
        for _ in range(EXPAND_CHUNK):
            if not frontier or self._halted:
                break
            if self._limits_hit(result, self._started):
                self._halt()
                break
            node = frontier.pop()
            expanded_keys = [] if self._reducer is not None else None
            #: skeleton root-to-node prefix, shared by every export from
            #: this node (computed on the first foreign-owned successor)
            node_prefix = None
            for transition in self._node_transitions(node, self._cache,
                                                     self._reducer, result):
                label, new_state, consumed, violations, steps = transition
                result.transitions += 1
                depth = node.depth + (1 if consumed else 0)
                child_sleep = None
                if self._reducer is not None:
                    child_sleep = self._child_sleep(node, self._reducer,
                                                    label, expanded_keys)
                if violations:
                    child = _Node(new_state, depth, parent=node, label=label,
                                  steps=steps, sleep=child_sleep)
                    self._record(result, child, violations)
                    if options.stop_on_first:
                        self._found = True
                        self._halt()
                        break
                if depth <= options.max_events:
                    owner = owner_of(new_state)
                    if owner == self.worker_id:
                        self._admit_child(node, label, steps, new_state,
                                          depth, child_sleep)
                    else:
                        if node_prefix is None:
                            node_prefix = tuple(
                                (lvl_label, _skeleton_steps(lvl_steps))
                                for lvl_label, lvl_steps in node.path())
                        self._export(owner, node_prefix, label, steps,
                                     new_state, depth, child_sleep)
                if self._cheap_limits_hit(result):
                    self._halt()
                    break
        if result.transitions - status_mark or self._halted:
            if (result.transitions // STATUS_EVERY
                    != status_mark // STATUS_EVERY) or self._halted:
                self._send_status(idle=False)

    def _visit(self, state, depth, sleep):
        """Shared visited/matcher bookkeeping; ``(fresh, sleep, is_new)``.

        ``is_new`` is the distinct-state signal (same accounting as the
        sequential engine: depth-improved revisits re-expand without
        re-counting), so the summed shard counts equal the single-worker
        ``states_explored``.
        """
        if self._matcher is None:
            fresh = not self._visited.seen_state(state, depth)
            is_new = fresh
            if fresh and self._count_distinct is not None:
                # a pruned revisit can never have grown the store
                now = self._count_distinct()
                is_new = now > self._last_distinct
                self._last_distinct = now
            return fresh, sleep, is_new
        pruned, sleep, is_new = self._matcher.seen_state(
            state, depth, sleep if sleep is not None else _NO_SLEEP)
        return not pruned, sleep, is_new

    def _admit_child(self, node, label, steps, state, depth, sleep):
        """Local admission of a successor this shard owns (the engine's
        child-admission block, minus the violation half already done)."""
        fresh, sleep, is_new = self._visit(state, depth, sleep)
        if not fresh:
            return
        if is_new:
            self._result.states_explored += 1
        if depth < self.options.max_events or state.pending:
            child = _Node(state, depth, parent=node, label=label,
                          steps=steps, sleep=sleep)
            self._frontier.push(child)

    def _admit(self, state, depth, sleep, base_path):
        """Admission of a state arriving over the wire (or the root)."""
        fresh, sleep, is_new = self._visit(state, depth, sleep)
        if not fresh:
            return
        if is_new:
            self._result.states_explored += 1
        if depth < self.options.max_events or state.pending:
            self._frontier.push(_SeedNode(state, depth, tuple(base_path),
                                          sleep=sleep))

    def _export(self, owner, node_prefix, label, steps, state, depth,
                sleep):
        """Buffer one handoff unless a previous export provably covers
        it (the receiver would prune the revisit anyway)."""
        fingerprint = state.fingerprint()
        recorded = self._exported.get(fingerprint)
        if recorded is not None:
            rdepth, rsleep = recorded
            if rdepth <= depth and (
                    rsleep is None
                    or (sleep is not None and sleep >= rsleep)):
                # the receiver has (or will see) this state at a depth
                # no worse and a sleep set no larger: its store/matcher
                # prune conditions are both implied, so the handoff
                # would be dead weight on the wire
                return
            self._exported[fingerprint] = (
                min(rdepth, depth),
                rsleep & sleep if (rsleep is not None
                                   and sleep is not None) else None)
        else:
            self._exported[fingerprint] = (depth, sleep)
        prefix = node_prefix + ((label, _skeleton_steps(steps)),)
        buffered = self._outbox[owner]
        buffered.append(self.codec.encode(state, depth, sleep, prefix))
        if len(buffered) >= HANDOFF_BATCH:
            self._flush_peer(owner)

    def _flush_peer(self, owner):
        buffered = self._outbox[owner]
        if not buffered:
            return
        blob = pickle.dumps(buffered, protocol=_WIRE_PICKLE)
        self.peer_queues[owner].put(("states", len(buffered), blob))
        self.sent += len(buffered)
        self.handoff_bytes += len(blob)
        self._outbox[owner] = []

    def _flush_outboxes(self):
        for peer in self._outbox:
            self._flush_peer(peer)

    # ------------------------------------------------------------------
    # work stealing
    # ------------------------------------------------------------------

    def _request_steal(self):
        """Ask one peer (round-robin) for a work lease before blocking
        on the inbox.  Requests are cheap, carry no work, and are not
        counted: an idle or halted victim simply ignores them.

        Requests back off exponentially (up to ``STEAL_BACKOFF_MAX``)
        while no *owned* work arrives: leases cost backflow handoffs,
        so a shard that stays starved because the ownership map gave it
        the small side should idle into termination, not strip-mine its
        peer.  Any regular handoff batch resets the backoff - that is
        the signal the search still produces work for this shard."""
        if self.shards < 2 or self._halted or self.stop_event.is_set():
            return
        now = time.monotonic()
        if now < self._next_steal_at:
            return
        self._next_steal_at = now + self._steal_backoff
        self._steal_backoff = min(self._steal_backoff * 2,
                                  STEAL_BACKOFF_MAX)
        cursor = self._steal_cursor
        for _ in range(self.shards - 1):
            cursor = (cursor + 1) % self.shards
            if cursor != self.worker_id:
                break
        self._steal_cursor = cursor
        try:
            self.peer_queues[cursor].put(("steal", self.worker_id))
        except (OSError, ValueError):
            pass  # a dying peer's queue; the parent will notice

    def _grant_lease(self, thief):
        """Lease a bounded slice of near-leaf frontier nodes to an
        idle peer (see :meth:`Frontier.steal` for why the deep end).

        Leased units use the same wire format and ride the same
        sent/received counters as handoffs, so counting termination
        still proves global exhaustion.  Ownership does not move: the
        thief expands the nodes and routes their successors normally.
        """
        if self._halted or len(self._frontier) <= STEAL_MIN:
            return
        candidates = self._frontier.steal(STEAL_BATCH)
        if not candidates:
            return
        # lease only near-leaf nodes: their children land at the event
        # bound, so a stolen node costs exactly one expansion of
        # backflow.  Anything shallower roots a whole subtree - the
        # thief would drag it through foreign territory, converting
        # edges that were shard-local under the locality map into
        # handoffs (measured: shallow leases double crossing traffic
        # at depth 4).  Shallow nodes drawn by the frontier go back.
        bound = self.options.max_events
        nodes = []
        for node in candidates:
            if node.depth + 1 >= bound:
                nodes.append(node)
            else:
                self._frontier.push(node)
        if not nodes:
            return
        units = []
        for node in nodes:
            prefix = tuple((label, _skeleton_steps(steps))
                           for label, steps in node.path())
            units.append(self.codec.encode(node.state, node.depth,
                                           node.sleep, prefix))
        blob = pickle.dumps(units, protocol=_WIRE_PICKLE)
        self.peer_queues[thief].put(("leased", len(units), blob))
        self.sent += len(units)
        self.handoff_bytes += len(blob)

    # ------------------------------------------------------------------
    # inbox + control plumbing
    # ------------------------------------------------------------------

    def _poll_inbox(self, block):
        """Drain available inbox messages; True when any state arrived."""
        progressed = False
        while True:
            try:
                message = self.inbox.get(timeout=IDLE_POLL if block else 0)
            except _queue_mod.Empty:
                return progressed
            kind = message[0]
            if kind == "states":
                self.received += message[1]
                # owned work arrived: the search still feeds this shard,
                # so future idle gaps earn an eager steal again
                self._steal_backoff = IDLE_POLL
                self._next_steal_at = 0.0
                if not self._halted:
                    for unit in pickle.loads(message[2]):
                        state, depth, sleep, prefix = self.codec.decode(
                            unit)
                        self._admit(state, depth, sleep, prefix)
                progressed = True
            elif kind == "steal":
                self._grant_lease(message[1])
            elif kind == "leased":
                self.received += message[1]
                self.steals += 1
                self.stolen_states += message[1]
                if not self._halted:
                    for unit in pickle.loads(message[2]):
                        state, depth, sleep, prefix = self.codec.decode(
                            unit)
                        # the victim already admitted these states (its
                        # visited store keeps the dedup record); they
                        # re-enter a frontier directly, not _visit
                        self._frontier.push(_SeedNode(state, depth,
                                                      tuple(prefix),
                                                      sleep=sleep))
                    progressed = True
            # drain the rest without waiting; the stop broadcast is an
            # Event checked by the main loop, never an inbox message
            block = False

    def _halt(self):
        """Stop expanding (limit hit / first violation) but keep
        draining the inbox so peers and the parent never stall."""
        self._halted = True

    def _send_status(self, idle, force=False):
        snapshot = (idle, self.sent, self.received,
                    self._result.states_explored, self._result.transitions,
                    self._found, self._result.truncated)
        changed = snapshot != self._last_status
        if not changed and not force:
            return
        self._last_status = snapshot
        self._seq += 1
        self.control.put(("status", self.worker_id, self._seq) + snapshot)
        if changed and self._telemetry_on:
            # telemetry rides the existing status channel but only on
            # genuine progress: a worker idling through the termination
            # confirmation's forced re-reports stays silent
            self.control.put(("telemetry", self.worker_id,
                              self._telemetry_fields()))

    def _telemetry_fields(self):
        """One worker's compact progress snapshot for the parent merge."""
        result = self._result
        fields = {
            "worker": self.worker_id,
            "states": result.states_explored,
            "transitions": result.transitions,
            "frontier": len(self._frontier),
            "elapsed": round(time.monotonic() - self._started, 6),
            "visited_bytes": self._visited.stats().get("approx_bytes", 0),
            "handoffs_sent": self.sent,
            "handoffs_received": self.received,
            "handoff_bytes": self.handoff_bytes,
            "steals": self.steals,
            "stolen_states": self.stolen_states,
        }
        cache = self._cache
        if cache is not None:
            fields["cache_hits"] = cache.hits
            fields["cache_misses"] = cache.misses
        return fields

    def _finish_shard(self):
        return self._finish(self._result, self._visited, self._cache,
                            self._started)


def _worker_main(worker_id, shards, job, queues, control, stop_event):
    """Process entry point of one shard."""
    from repro.engine.batch import build_job_context

    kill = os.environ.get("REPRO_SHARD_TEST_KILL")
    if kill is not None and kill.strip().isdigit() \
            and int(kill) == worker_id:
        # deterministic crash hook for the degradation tests: die before
        # reporting anything, exactly like a hard worker crash would
        os._exit(17)

    inbox = queues[worker_id]
    try:
        system, properties = build_job_context(job)
        engine = _ShardEngine(system, properties, job.options, worker_id,
                              shards, inbox, queues, control, stop_event)
        result = engine.run()
        payload = {
            "result": result.to_dict(),
            "sent": engine.sent,
            "received": engine.received,
            "handoff_bytes": engine.handoff_bytes,
            "steals": engine.steals,
            "stolen_states": engine.stolen_states,
            "root_fp": engine._root_fp,
            "root_owner": engine._root_owner,
        }
        control.put(("result", worker_id, payload))
    except Exception:
        control.put(("error", worker_id, traceback.format_exc()))
    finally:
        # exit must never hang on undelivered handoffs: receivers may
        # already be gone, and the data is meaningless after stop
        for peer, peer_queue in enumerate(queues):
            if peer != worker_id:
                peer_queue.cancel_join_thread()
        try:  # drain what peers managed to enqueue, unblocking their feeders
            while True:
                inbox.get_nowait()
        except (_queue_mod.Empty, OSError):
            pass


# ---------------------------------------------------------------------------
# parent-side orchestration
# ---------------------------------------------------------------------------


class ShardError(RuntimeError):
    """The sharded run's results would be unsound (soundness errors
    only: worker *crashes* degrade gracefully into a truncated result
    with a ``shard_failure`` record instead of raising)."""


def explore_sharded(job, workers=None, keep_replay_system=False):
    """Verify one job with a sharded multi-process search.

    ``job`` is a picklable :class:`~repro.engine.batch.VerificationJob`
    (the same contract as ``verify_many``: workers rebuild the system
    from the declarative description).  Returns a merged
    :class:`~repro.engine.result.ExplorationResult` whose verdict,
    violation set and counterexample traces match the single-worker
    run; ``workers``/``shard_stats`` carry the per-shard accounting.

    ``keep_replay_system=True`` attaches the system the canonical trace
    replay ran against as ``result.replay_system``, so an in-process
    caller rendering traces need not build another one.  Off by
    default: a bound system does not pickle, and batch/service runs
    ship results across process boundaries.
    """
    from repro.engine.batch import _warm_registries, build_job_context

    workers = default_shard_workers(workers or job.options.workers)
    if workers <= 1:
        from repro.engine.batch import execute_job_inline
        return execute_job_inline(job)

    ctx, hash_seed = _mp_context()
    _warm_registries([job])  # fork children inherit the parsed corpus
    queues = [ctx.Queue() for _ in range(workers)]
    control = ctx.Queue()
    stop_event = ctx.Event()
    restore_seed = _pin_hash_seed(hash_seed)
    try:
        procs = [ctx.Process(target=_worker_main,
                             args=(wid, workers, job, queues, control,
                                   stop_event),
                             daemon=True, name="repro-shard-%d" % wid)
                 for wid in range(workers)]
        for proc in procs:
            proc.start()
    finally:
        if restore_seed is not None:
            restore_seed()

    # the parent owns the run's telemetry: workers forward compact
    # snapshots over the control queue and the merged cluster view is
    # written (and board-published) from exactly one process
    from repro.obs.telemetry import open_session
    telemetry = open_session(job.options.telemetry)
    started = time.monotonic()
    try:
        if telemetry is not None:
            telemetry.run_start(job.options, workers=workers)
        try:
            payloads, stop_reason, failure = _coordinate(
                job.options, workers, stop_event, control, procs, started,
                telemetry)
        except BaseException:
            stop_event.set()  # no worker may outlive a coordination error
            _shutdown(procs, queues, control)
            raise
        stop_event.set()
        if failure is not None:
            # Handoffs parked in a dead shard's inbox cannot be requeued:
            # state ownership is a static pure function of state content,
            # so no surviving worker may explore them, and the
            # sent/received termination counters could never balance again
            # anyway.  Drain and count them instead, so the failure record
            # quantifies the lost frontier.
            failure["lost_handoffs"] = sum(
                _drain_lost_handoffs(queues[wid])
                for wid in failure["workers"])
        _shutdown(procs, queues, control)

        merged, candidates = _merge_shards(payloads, workers)
        if failure is not None:
            merged.shard_failure = failure
        if stop_reason is not None and not merged.truncated:
            merged.truncated = True
            merged.truncated_reason = stop_reason
        replay_system = _rebuild_counterexamples(job, merged, candidates)
        if keep_replay_system:
            merged.replay_system = replay_system
        # stamped after the trace rebuild: the canonical replay is part of
        # the sharded run's cost, and states/sec must not hide it
        merged.elapsed = time.monotonic() - started
        if telemetry is not None:
            for name in sorted(merged.profile):
                telemetry.span(name, merged.profile[name])
            telemetry.run_end(merged)
        return merged
    finally:
        if telemetry is not None:
            telemetry.close()


def _pin_hash_seed(hash_seed):
    """Pin ``PYTHONHASHSEED`` for spawn children; returns the undo."""
    if hash_seed is None:
        return None
    previous = os.environ.get("PYTHONHASHSEED")
    os.environ["PYTHONHASHSEED"] = hash_seed

    def restore():
        if previous is None:
            os.environ.pop("PYTHONHASHSEED", None)
        else:
            os.environ["PYTHONHASHSEED"] = previous

    return restore


def _coordinate(options, workers, stop_event, control, procs, started,
                telemetry=None):
    """The parent's event loop: statuses in, one stop decision out.

    Exhaustive termination needs two barriers.  The *tentative* verdict
    fires when every worker's latest report says idle and the summed
    sent/received handoff counters agree.  Reports are stale snapshots,
    though: a worker may have woken on a late handoff and be flushing
    new work that neither counter reflects yet, so a lone balanced
    observation can be spurious (the classic pitfall of naive counting
    termination detection).  The parent therefore *confirms*: it stops
    only once every worker has reported again - strictly after the
    tentative observation - still idle with unchanged counters.  Any
    counter movement in between cancels the confirmation.  A send after
    a worker's first report would change its counters; a receipt
    implies such a send; so double-barrier equality proves nothing is
    buffered, in flight or unprocessed anywhere.  (Work leases ride the
    same counters; steal *requests* carry no work and idle workers
    never grant, so an in-flight request cannot break the proof.)

    Global limits (state/transition counts aggregated across shards,
    the wall clock) and ``stop_on_first`` route through the same stop
    broadcast without confirmation - they do not claim exhaustiveness.

    Worker failures - a reported exception or a process found dead
    twice without a result - degrade gracefully: the swarm is stopped,
    surviving shards flush their partial results, and the failure is
    returned as a structured record instead of raised, so callers get
    a typed ``shard_failure`` on the merged result rather than a stack
    trace.  Returns ``(per-worker result payloads, stop reason,
    failure-record-or-None)``.
    """
    statuses = {}   # wid -> (seq, snapshot)
    shard_snaps = {}  # wid -> latest forwarded telemetry fields
    payloads = {}
    failed = {}     # wid -> exit code (None when the worker reported
                    # an exception and exited normally)
    detail = None   # first reported traceback, if any
    stop_reason = None
    #: wid -> (seq, sent, received) at the tentative balanced
    #: observation; None when no confirmation round is open
    confirming = None
    confirmed = set()
    suspects = set()
    next_liveness = time.monotonic() + 1.0

    def broadcast_stop(reason):
        nonlocal stop_reason
        if not stop_event.is_set():
            stop_reason = reason
            stop_event.set()

    while len(payloads) + len(failed) < workers:
        now = time.monotonic()
        if now >= next_liveness:
            next_liveness = now + 1.0
            # a worker flushes its result before exiting, so a dead
            # worker without one is a crash; requiring two sweeps ~1s
            # apart bridges the flush-visible-to-exit-visible race
            suspects = _check_liveness(procs, payloads, failed, suspects,
                                       broadcast_stop)
        try:
            message = control.get(timeout=IDLE_POLL)
        except _queue_mod.Empty:
            if not stop_event.is_set() and _time_limit_exceeded(options,
                                                                started):
                broadcast_stop("time_limit")
            continue
        kind = message[0]
        if kind == "result":
            payloads[message[1]] = message[2]
            continue
        if kind == "error":
            failed.setdefault(message[1], None)
            if detail is None:
                detail = message[2]
            broadcast_stop("shard_failure")
            continue
        if kind == "telemetry":
            # a compact per-worker progress dict, sent alongside a real
            # status change (so the STATUS_EVERY cadence bounds it);
            # the parent records the raw shard view and re-derives the
            # merged cluster snapshot from the latest report per worker
            shard_snaps[message[1]] = message[2]
            if telemetry is not None:
                telemetry.shard_snapshot(message[2])
                telemetry.snapshot(_cluster_fields(
                    shard_snaps, time.monotonic() - started))
            continue
        if kind == "status":
            statuses[message[1]] = (message[2], message[3:])
        if stop_event.is_set():
            continue
        if _time_limit_exceeded(options, started):
            broadcast_stop("time_limit")
            continue
        snapshots = {wid: entry[1] for wid, entry in statuses.items()}
        reason = _limits_tripped(options, snapshots)
        if reason is not None:
            broadcast_stop(reason)
            continue
        if options.stop_on_first and any(s[5] for s in snapshots.values()):
            broadcast_stop(None)
            continue
        balanced = (len(statuses) == workers
                    and all(s[0] for s in snapshots.values())
                    and sum(s[1] for s in snapshots.values())
                    == sum(s[2] for s in snapshots.values()))
        if not balanced:
            confirming = None
            continue
        if confirming is None:
            confirming = {wid: (seq, snap[1], snap[2])
                          for wid, (seq, snap) in statuses.items()}
            confirmed = set()
            continue
        wid = message[1]
        seq, snap = statuses[wid]
        first_seq, first_sent, first_received = confirming[wid]
        if (snap[0], snap[1], snap[2]) != (True, first_sent, first_received):
            # counters moved (or the worker woke): the balance was a
            # stale mirage; re-arm from scratch
            confirming = None
            continue
        if seq > first_seq:
            confirmed.add(wid)
            if len(confirmed) == workers:
                broadcast_stop(None)
    failure = None
    if failed:
        failure = {"workers": sorted(failed),
                   "exitcodes": [failed[wid] for wid in sorted(failed)],
                   "detail": detail}
    return payloads, stop_reason, failure


def _cluster_fields(shard_snaps, elapsed):
    """The merged cluster view: sums over the latest per-worker
    telemetry reports, stamped with the parent's clock."""
    def total(key):
        return sum(snap.get(key, 0) for snap in shard_snaps.values())

    fields = {
        "states": total("states"),
        "transitions": total("transitions"),
        "frontier": total("frontier"),
        "visited_bytes": total("visited_bytes"),
        "handoffs_sent": total("handoffs_sent"),
        "handoff_bytes": total("handoff_bytes"),
        "steals": total("steals"),
        "stolen_states": total("stolen_states"),
        "workers_reporting": len(shard_snaps),
        "elapsed": round(elapsed, 6),
    }
    hits = total("cache_hits")
    misses = total("cache_misses")
    if hits or misses:
        fields["cache_hits"] = hits
        fields["cache_misses"] = misses
        fields["cache_hit_rate"] = round(hits / (hits + misses), 4)
    return fields


def _time_limit_exceeded(options, started):
    return (options.time_limit
            and time.monotonic() - started > options.time_limit)


def _limits_tripped(options, statuses):
    """A global limit reached by the *aggregate* shard counters."""
    states = sum(s[3] for s in statuses.values())
    transitions = sum(s[4] for s in statuses.values())
    if options.max_states and states >= options.max_states:
        return "max_states"
    if options.max_transitions and transitions >= options.max_transitions:
        return "max_transitions"
    if any(s[6] for s in statuses.values()):  # a shard-local backstop hit
        return "max_states"
    return None


def _check_liveness(procs, payloads, failed, suspects, broadcast_stop):
    """Crash detection: returns the new suspect set.

    A dead worker without a result is suspicious once and *failed*
    twice - the worker's exit joins its control-queue feeder, so by the
    second sweep (~1s later) a legitimately finished worker's result
    would have been read from the control queue already.  Twice-
    suspected workers are recorded in ``failed`` (with their exit
    codes) and the swarm is stopped; the coordinator then collects the
    surviving shards' partial results instead of raising.
    """
    dead = {wid for wid, proc in enumerate(procs)
            if wid not in payloads and wid not in failed
            and not proc.is_alive()}
    repeat = dead & suspects
    if repeat:
        for wid in sorted(repeat):
            failed[wid] = procs[wid].exitcode
        broadcast_stop("shard_failure")
    return dead - set(failed)


def _drain_lost_handoffs(inbox):
    """Count the cross-shard states parked in a dead worker's inbox.

    Best effort: peers that exited mid-send may have dropped batches on
    the floor already (their queue feeders are cancelled on exit), so
    this is a lower bound on the lost frontier.  Wire messages carry
    their unit count, so the blobs never need unpickling here.
    """
    lost = 0
    try:
        while True:
            message = inbox.get_nowait()
            if message[0] in ("states", "leased"):
                lost += message[1]
    except (_queue_mod.Empty, OSError, ValueError):
        pass
    return lost


def _shutdown(procs, queues, control):
    for proc in procs:
        proc.join(timeout=10.0)
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5.0)
    for peer_queue in queues:
        peer_queue.cancel_join_thread()
        peer_queue.close()
    control.cancel_join_thread()
    control.close()


# ---------------------------------------------------------------------------
# merging + deterministic trace reconstruction
# ---------------------------------------------------------------------------


def _merge_shards(payloads, workers):
    """Sum shard statistics into one result; collect trace candidates."""
    merged = ExplorationResult()
    merged.workers = workers
    candidates = []
    root_fps = set()
    root_owners = 0
    visited_stored = 0
    visited_bytes = 0
    for wid in sorted(payloads):
        payload = payloads[wid]
        shard = ExplorationResult.from_dict(payload["result"])
        root_fps.add(payload.get("root_fp"))
        root_owners += 1 if payload.get("root_owner") else 0
        merged.states_explored += shard.states_explored
        merged.transitions += shard.transitions
        merged.cache_hits += shard.cache_hits
        merged.cache_misses += shard.cache_misses
        merged.cache_auto_disabled |= shard.cache_auto_disabled
        if merged.cache_disable_reason is None:
            merged.cache_disable_reason = shard.cache_disable_reason
        for phase, seconds in shard.profile.items():
            # summed across shards: aggregate worker time per phase
            merged.profile[phase] = merged.profile.get(phase, 0.0) + seconds
        merged.commutes_pruned += shard.commutes_pruned
        if shard.cache_mode != "off":
            merged.cache_mode = shard.cache_mode
        if shard.truncated and not merged.truncated:
            merged.truncated = True
            merged.truncated_reason = shard.truncated_reason
        visited_stored += shard.visited_stats.get("stored", 0)
        visited_bytes += shard.visited_stats.get("approx_bytes", 0)
        for key, value in shard.property_stats.items():
            if isinstance(value, (int, float)):
                merged.property_stats[key] = (
                    merged.property_stats.get(key, 0) + value)
        merged.shard_stats.append({
            "worker": wid,
            "states_explored": shard.states_explored,
            "transitions": shard.transitions,
            "handoffs_sent": payload.get("sent", 0),
            "handoffs_received": payload.get("received", 0),
            "handoff_bytes": payload.get("handoff_bytes", 0),
            "steals": payload.get("steals", 0),
            "stolen_states": payload.get("stolen_states", 0),
            "cache_hits": shard.cache_hits,
            "cache_misses": shard.cache_misses,
            "cache_auto_disabled": shard.cache_auto_disabled,
            "cache_disable_reason": shard.cache_disable_reason,
            "commutes_pruned": shard.commutes_pruned,
            "visited_stats": dict(shard.visited_stats),
        })
        candidates.extend(shard.counterexamples.values())
    if len(root_fps) > 1:
        raise ShardError(
            "shards disagree on the root fingerprint (%s): state ownership "
            "was inconsistent, results are unsound - the worker start "
            "method must give every shard the same hash seed" % root_fps)
    if len(payloads) == workers and root_owners != 1:
        raise ShardError(
            "%d shards claimed the root state (expected exactly 1): the "
            "partitioner's owner map was inconsistent across shards, "
            "results are unsound" % root_owners)
    merged.visited_stats = {
        "stored": visited_stored,
        "approx_bytes": visited_bytes,
        "bytes_per_state": (round(visited_bytes / visited_stored, 1)
                            if visited_stored else 0.0),
    }
    return merged, candidates


def _rebuild_counterexamples(job, merged, candidates):
    """Replay the canonical violating paths in the parent process.

    Shard-reported counterexamples carry exact labels and dedup keys
    (their skeleton prefixes keep attribution intact), but which shard
    found a given violation first - and through which of several
    equal-length commuting prefixes - is a scheduling race, and their
    handed-off prefixes are attribution skeletons, not full cascade
    logs.  The parent therefore replays each candidate event sequence
    on its own freshly built system, records the violations through
    the engine's canonical-minimum recorder, and then runs the shared
    trace canonicalization (permutation replay), so the rendered
    traces are a function of the state space alone - byte-identical to
    the single-worker run's.

    Returns the replay system (None when there was nothing to replay)
    so callers that render traces need not build yet another one.
    """
    if not candidates:
        return None
    from repro.engine.batch import build_job_context

    system, properties = build_job_context(job)
    engine = ExplorationEngine(system, properties, job.options)
    engine.system.use_compiled = job.options.compiled
    if job.options.engine == "codegen":
        # replay through the same generated executors the shards ran
        # (regenerated from the digest-keyed source cache, not pickled)
        from repro.model.codegen import CodegenPlan

        plan = CodegenPlan(engine.system,
                           cache_dir=job.options.codegen_cache)
        engine.system.executor_factory = plan.executor_factory
    paths = {}
    for candidate in candidates:
        paths.setdefault(tuple(candidate.event_labels()), candidate)
    for labels in sorted(paths, key=lambda L: (len(L), L)):
        replayed = replay_path(engine, labels)
        if replayed is None:
            _fallback_record(merged, paths[labels])
            continue
        node, violations = replayed
        engine._record(merged, node, violations)
    # safety net: a replay must never *lose* a violation a shard proved
    for candidate in candidates:
        if candidate.violation.dedup_key() not in merged.counterexamples:
            _fallback_record(merged, candidate)
    engine._canonicalize_traces(merged)
    return system


def _fallback_record(merged, candidate):
    key = candidate.violation.dedup_key()
    existing = merged.counterexamples.get(key)
    if (existing is None
            or path_order_key(candidate.path) < path_order_key(existing.path)):
        merged.counterexamples[key] = candidate
