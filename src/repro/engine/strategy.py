"""The search-strategy registry.

A *strategy* names a frontier construction.  Registering a strategy makes
it selectable by name through :class:`~repro.engine.options.EngineOptions`
(and therefore through the CLI's ``--strategy`` flag) without touching the
engine core - the "pluggable" half of the pluggable engine.
"""

from repro.engine.frontier import (
    BreadthFirstFrontier,
    DepthFirstFrontier,
    PriorityFrontier,
)

_STRATEGIES = {}


def register_strategy(name, factory):
    """Register ``factory(options) -> Frontier`` under ``name``.

    Re-registering a name replaces the previous factory (latest wins), so
    embedders can override the built-ins.
    """
    _STRATEGIES[name] = factory
    return factory


def strategy_names():
    """The registered strategy names (CLI choices), sorted."""
    return sorted(_STRATEGIES)


def make_frontier(name, options):
    """Instantiate the frontier for a registered strategy name."""
    factory = _STRATEGIES.get(name)
    if factory is None:
        raise KeyError("unknown search strategy %r (registered: %s)"
                       % (name, ", ".join(strategy_names())))
    return factory(options)


register_strategy("dfs", lambda options: DepthFirstFrontier())
register_strategy("bfs", lambda options: BreadthFirstFrontier())
register_strategy(
    "priority",
    lambda options: PriorityFrontier(getattr(options, "priority", None)))
