"""Shard-ownership partitioners for the sharded engine.

A partitioner maps every reachable state to exactly one owning shard; a
shard only admits (dedups, counts, expands) states it owns and exports
the rest.  The mapping must be a pure function of the state's canonical
content so every shard computes the same owner for the same state -
that is what keeps the distinct-state count and the verdict identical
to a single-worker run.

Two strategies ship:

``fingerprint``
    The PR 5 baseline: ``state.fingerprint() % shards``.  Perfectly
    balanced and cheap, but with zero locality - successive states of a
    run land on arbitrary shards, so nearly every edge crosses a shard
    boundary and the run drowns in handoffs.

``locality`` (default)
    Owns states by a *stable projection* of the packed
    :class:`~repro.model.schema.StateSchema` grid
    (:meth:`~repro.model.schema.StateSchema.projection_key`): a small
    slice of the scheduler/device portion that changes on only a
    minority of transitions.  Successor chains that leave the projected
    slice untouched stay shard-local, cutting cross-shard handoffs by
    an order of magnitude on the bench workload.  The projection is
    coarser than a full hash, so ownership can be uneven - the work
    stealing in :mod:`repro.engine.parallel` exists to absorb exactly
    that imbalance.

The fingerprint strategy inherits the engine's usual caveat that every
shard must share one interpreter hash seed (fork inherits it; the spawn
path pins ``PYTHONHASHSEED``).  The locality strategy avoids the seed
entirely - it hashes the projection key's ``repr`` with CRC-32 - so its
ownership map (and therefore the bench's handoff counts) is identical
run to run.  The parent additionally cross-checks a root fingerprint
and sole root ownership at merge time.
"""

import zlib


class FingerprintPartitioner:
    """Ownership by whole-state fingerprint modulo the shard count."""

    name = "fingerprint"

    __slots__ = ("shards",)

    def __init__(self, system, shards):
        self.shards = shards

    def owner(self, state):
        return state.fingerprint() % self.shards


class LocalityPartitioner:
    """Ownership by a stable projection of the packed slot grid."""

    name = "locality"

    __slots__ = ("shards", "_schema")

    def __init__(self, system, shards):
        self.shards = shards
        self._schema = system.state_schema()

    def owner(self, state):
        key = self._schema.projection_key(state)
        return zlib.crc32(repr(key).encode("utf-8")) % self.shards


_PARTITIONERS = {
    FingerprintPartitioner.name: FingerprintPartitioner,
    LocalityPartitioner.name: LocalityPartitioner,
}


def partitioner_names():
    """Valid values for the ``partition`` engine option."""
    return sorted(_PARTITIONERS)


def make_partitioner(name, system, shards):
    """Instantiate the named strategy for one sharded run."""
    try:
        factory = _PARTITIONERS[name]
    except KeyError:
        raise ValueError("unknown partitioner %r (expected one of %s)"
                         % (name, ", ".join(partitioner_names())))
    return factory(system, shards)
