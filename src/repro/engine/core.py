"""The exploration engine: bounded search over external-event permutations.

"The model checker enumerates all possible permutations of the input
physical events up to a maximum number of events per user's configuration
to exhaustively verify the system." (§8, Algorithm 1.)

Used as a *falsifier* (§2.3): the search records a counterexample per
violated property and keeps exploring until the bounded state space is
exhausted or a limit trips.  The engine is assembled from three pluggable
parts - a :class:`~repro.engine.frontier.Frontier` (expansion order), a
VisitedStore (pruning) and the transition relation of the system under
test - so strategies and stores swap without touching the search itself.

Two optional accelerators layer on top:

* the **successor cache** memoizes whole expansions keyed by state
  fingerprint, with LRU eviction and a hit-rate watchdog that disables
  and empties the memo when a run turns out not to revisit expanded
  states (deep bounds mostly do not);
* the **sleep-set reduction** (``reduction=True``) prunes redundant
  interleavings of commuting external events using the static
  independence relation: each search node carries a *sleep set* of event
  identities whose exploration is provably redundant here, and sleep
  sets propagate to children so entire commuting suffixes disappear, not
  just one order per adjacent pair.  State matching follows Godefroid's
  combination: the visited store remembers the sleep set each state was
  expanded with, and a revisit with a *weaker* sleep set re-expands with
  the intersection instead of pruning.
"""

import gc
import time
from collections import OrderedDict

from repro.engine.options import CONCURRENT, SWARM, EngineOptions
from repro.engine.result import ExplorationResult

#: shared empty sleep set (most nodes sleep nothing)
_NO_SLEEP = frozenset()

#: longest counterexample the trace canonicalization will permute
#: (factorial growth; beyond this the recorded path is kept as-is)
PERMUTE_TRACE_LIMIT = 6

#: bitstate fill ratio beyond which the store is saturating (missed
#: states become likely) and telemetry emits a warning event
BITSTATE_SATURATION_WARN = 0.5


class _Node:
    """A search node with parent links for counterexample reconstruction.

    ``key`` caches the state's 64-bit fingerprint (the successor-cache
    key) and ``sleep`` the node's sleep set under the partial-order
    reduction - both are computed at most once per node instead of per
    loop iteration.
    """

    __slots__ = ("state", "depth", "parent", "label", "steps", "key",
                 "sleep")

    def __init__(self, state, depth, parent=None, label=None, steps=(),
                 sleep=None):
        self.state = state
        self.depth = depth
        self.parent = parent
        self.label = label
        self.steps = steps
        self.key = None
        self.sleep = sleep

    def path(self):
        """Root-to-here as ``[(event label, [TraceStep, ...]), ...]``."""
        chain = []
        node = self
        while node.parent is not None:
            chain.append((node.label, list(node.steps)))
            node = node.parent
        chain.reverse()
        # a sharded worker's seed nodes carry the event prefix that led
        # to them in some other shard (see repro.engine.parallel); plain
        # roots have no such attribute
        base = getattr(node, "base_path", None)
        if base:
            return list(base) + chain
        return chain


class _SuccessorCache:
    """Fingerprint-keyed expansion memo: LRU eviction + hit-rate watchdog.

    ``capacity`` bounds the number of live entries; storing beyond it
    evicts the least-recently-hit expansion instead of refusing new ones
    (the old hard stop froze the cache with whatever happened to be
    expanded first).

    The watchdog judges the cache by *post-warmup rolling windows*: the
    first ``warmup`` lookups are exempt from the decision entirely (a
    search necessarily starts with a cold streak of compulsory misses -
    at depth >= 4 the old all-time-rate check condemned the cache on
    that streak alone, before a single revisit was even possible), and
    thereafter each completed window of ``warmup`` lookups must clear
    ``min_hit_rate`` or the cache is disabled *and emptied*, because
    every recorded expansion pins all of its successor states - hundreds
    of thousands of retained states for a hit rate in the low percent.
    A passing window resets the counters, so a long hot phase cannot
    mask a later cold one.  :attr:`disable_reason` records the verdict
    for the run report.

    A sharded worker passes ``grace_warmup=False``: ownership
    partitioning dedups states *across* shards, so repeat fingerprints
    (the only thing this cache can hit on) are structurally rare there
    and the first rolling window already judges honestly - the warmup
    exemption would just burn ``warmup`` lookups' worth of pinned
    successors per shard before admitting the cache is dead.
    """

    __slots__ = ("entries", "capacity", "min_hit_rate", "warmup", "grace",
                 "hits", "misses", "enabled", "auto_disabled",
                 "disable_reason", "_window_hits", "_window_total")

    def __init__(self, options, grace_warmup=True):
        self.entries = OrderedDict()
        self.capacity = options.cache_limit
        self.min_hit_rate = options.cache_min_hit_rate
        self.warmup = options.cache_warmup
        self.grace = options.cache_warmup if grace_warmup else 0
        self.hits = 0
        self.misses = 0
        self.enabled = True
        self.auto_disabled = False
        self.disable_reason = None
        self._window_hits = 0
        self._window_total = 0

    def lookup(self, key):
        """The memoized expansion for ``key``; None (and counted as a
        miss, feeding the watchdog) when absent."""
        entry = self.entries.get(key)
        if entry is not None:
            self.hits += 1
            if self.hits + self.misses > self.grace:
                self._window_hits += 1
                self._window_total += 1
            self.entries.move_to_end(key)
            return entry
        self.misses += 1
        if self.min_hit_rate and self.warmup \
                and self.hits + self.misses > self.grace:
            self._window_total += 1
            if self._window_total >= self.warmup:
                if self._window_hits < self._window_total * self.min_hit_rate:
                    self.enabled = False
                    self.auto_disabled = True
                    self.disable_reason = (
                        "post-warmup hit rate %.1f%% < %.1f%% over the last "
                        "%d lookups" % (
                            100.0 * self._window_hits / self._window_total,
                            100.0 * self.min_hit_rate, self._window_total))
                    self.entries = OrderedDict()  # release pinned successors
                else:
                    self._window_hits = 0
                    self._window_total = 0
        return None

    def store(self, key, record):
        if len(self.entries) >= self.capacity:
            self.entries.popitem(last=False)
        self.entries[key] = record


class _SleepStateMatcher:
    """Godefroid-style combination of sleep sets with visited matching.

    The wrapped store keeps its depth-aware pruning; this layer remembers
    the sleep set each state was last queued for expansion with.  A
    revisit prunes only when both the depth *and* the sleep set allow it:
    arriving with a sleep set that is not a superset of the recorded one
    means some transition slept before must now be explored, so the state
    re-expands with the intersection of both sleep sets.
    """

    __slots__ = ("store", "_sleeps")

    def __init__(self, store):
        self.store = store
        #: store key -> sleep set of the last queued expansion
        self._sleeps = {}

    def seen_state(self, state, depth, sleep):
        """Returns ``(pruned, effective_sleep, is_new)``; records the visit.

        ``is_new`` distinguishes a genuinely unseen state from a
        re-expansion (depth improvement or sleep-set weakening) so the
        engine can keep ``states_explored`` a distinct-state count under
        the reduction.
        """
        key = self.store.state_key(state)
        pruned = self.store.seen_before(key, depth)
        old = self._sleeps.get(key)
        if old is None:
            # first sighting under this key (or an approximate store's
            # collision with an untracked key: prune as the store says)
            self._sleeps[key] = sleep
            return pruned, sleep, not pruned
        if pruned and sleep >= old:
            return True, sleep, False
        effective = sleep & old
        self._sleeps[key] = effective
        return False, effective, False


class ExplorationEngine:
    """Runs the bounded search on one :class:`~repro.model.system.IoTSystem`."""

    def __init__(self, system, properties, options=None):
        # imported here: repro.checker's package init re-exports this
        # module's shim, so a top-level import would be circular
        from repro.checker.compiled import CompiledProperties
        from repro.checker.monitor import SafetyMonitor
        from repro.checker.violations import Counterexample

        self.system = system
        self.properties = list(properties)
        self.options = options or EngineOptions()
        # applied at construction (not _setup_search) so replay engines —
        # counterexample rehydration, canonicalization, shard rebuilds —
        # execute the same faulted relation as the search itself
        from repro.model.faults import resolve_scenario
        system.scenario_profile = resolve_scenario(self.options.scenario)
        self._monitor_cls = SafetyMonitor
        self._counterexample_cls = Counterexample
        #: live telemetry session (opened per run; None when disabled)
        self._telemetry = None
        #: the codegen tier's plan (generated programs + pooled
        #: executors + lean relation); None on the other tiers
        self._plan = None
        #: per-phase wall time (``codegen`` setup, ``canonicalize``);
        #: merged into ``result.profile`` by ``_finish``
        self._phase_times = {}
        # partition properties and resolve applicability once per engine;
        # every per-cascade monitor shares this compiled set.  The verdict
        # memo is hash-keyed (physical projection, ~2^-64 collisions), so
        # the "exact" store - whose contract is no hash shortcuts at all -
        # turns it off and re-evaluates invariants on every quiescent state
        self._compiled_properties = CompiledProperties(
            system, self.properties,
            memoize=self.options.visited != "exact")

    def _monitor_factory(self):
        return self._monitor_cls(self.system, self.properties,
                                 compiled=self._compiled_properties)

    def run(self):
        """Explore; returns an :class:`ExplorationResult`."""
        if self.options.mode == SWARM:
            # the swarm driver runs its members through this same class
            # (each member is a sequential engine), so the delegation
            # cannot recurse
            from repro.engine.swarm import explore_swarm
            return explore_swarm(self)
        restore_gc = self.options.manage_gc and gc.isenabled()
        if restore_gc:
            # the search churns through millions of short-lived acyclic
            # objects; gen-0 sweeps cost ~1/3 of wall clock and reclaim
            # nothing that reference counting doesn't
            gc.disable()
        try:
            return self._run()
        finally:
            if restore_gc:
                gc.enable()

    def _setup_search(self, result):
        """Assemble one run's moving parts; shared with the shard
        workers (:mod:`repro.engine.parallel`) so the two search loops
        cannot drift in what they initialize.

        Returns ``(visited, frontier, cache, reducer, matcher)`` and
        applies the per-run execution back-end choice to the system.
        """
        options = self.options
        # the execution back-end is a per-run choice (--no-compile flips
        # the same system back to the tree-interpreter oracle)
        self.system.use_compiled = options.compiled
        self.system.executor_factory = None
        self._plan = None
        if options.engine == "codegen":
            # generation is digest-keyed and disk-cached, so this is a
            # cache read on every run after the first for a given system
            from repro.model.codegen import CodegenPlan
            generation_started = time.monotonic()
            self._plan = CodegenPlan(self.system,
                                     cache_dir=options.codegen_cache)
            # traced cascades (counterexample replay, canonicalization)
            # run the generated modules too - one relation, two step
            # recording modes
            self.system.executor_factory = self._plan.executor_factory
            self._phase_times["codegen"] = (time.monotonic()
                                            - generation_started)
        visited = options.make_visited(self.system)
        frontier = options.make_frontier()
        cache = None
        if options.successor_cache:
            cache = _SuccessorCache(options,
                                    grace_warmup=self.cache_grace_warmup)
            result.cache_mode = "fingerprint"
        reducer = self._make_reducer()
        matcher = _SleepStateMatcher(visited) if reducer is not None else None
        return visited, frontier, cache, reducer, matcher

    def _run(self):
        options = self.options
        result = ExplorationResult()
        started = time.monotonic()
        telemetry = self._telemetry = self._open_telemetry()
        if telemetry is not None:
            telemetry.run_start(options)
        visited, frontier, cache, reducer, matcher = self._setup_search(
            result)

        # third-party stores without the O(1) distinct counter degrade
        # to the legacy fresh-equals-new accounting.  The counter is
        # only sampled on *fresh* admissions (a pruned revisit can never
        # have grown the store), keeping the per-transition hot path at
        # exactly one store call
        count_distinct = getattr(visited, "distinct_count", None)
        last_distinct = count_distinct() if count_distinct is not None else 0

        root = _Node(self.system.initial_state(), 0,
                     sleep=_NO_SLEEP if reducer is not None else None)
        if matcher is None:
            visited.seen_state(root.state, 0)
        else:
            matcher.seen_state(root.state, 0, _NO_SLEEP)
        result.states_explored = 1
        frontier.push(root)

        # wall-clock reads are hoisted out of the transition loop: the
        # cheap integer limits stay exact per transition, the time limit
        # is only sampled every ``check_interval`` transitions and once
        # per expansion
        check_interval = max(1, options.check_interval)
        next_time_check = check_interval
        # progress snapshots piggyback on the same sampling; their own
        # (coarser) cadence keeps even O(n)-stats stores cheap to poll.
        # When telemetry is off this costs one dead local per run.
        snapshot_gap = 0
        next_snapshot = 0
        if telemetry is not None:
            snapshot_gap = telemetry.config.snapshot_gap(check_interval)
            next_snapshot = snapshot_gap

        # the codegen tier drains the frontier slab-at-a-time: a batch
        # of nodes is popped together and its cache misses evaluate
        # event-class-major through the lean relation.  Per-node
        # transition lists are identical to the node-at-a-time path;
        # only the node *expansion* order changes, which the engine's
        # order-invariant recording already absorbs (it is the same
        # freedom a frontier strategy or a sharded run exercises).
        slab_size = 1
        if self._plan is not None and options.mode != CONCURRENT:
            slab_size = max(1, options.slab_size)

        while frontier:
            if self._limits_hit(result, started):
                break
            nodes = [frontier.pop()]
            while len(nodes) < slab_size and frontier:
                nodes.append(frontier.pop())
            if slab_size > 1:
                expansions = self._slab_expansions(nodes, cache, reducer,
                                                   result)
            else:
                expansions = (self._node_transitions(nodes[0], cache,
                                                     reducer, result),)
            aborted = False
            for node, transitions in zip(nodes, expansions):
                # event keys already expanded from this node, in order
                # (the sleep sets of later siblings absorb the
                # independent ones)
                expanded_keys = [] if reducer is not None else None
                for transition in transitions:
                    label, new_state, consumed, violations, steps = transition
                    result.transitions += 1
                    depth = node.depth + (1 if consumed else 0)
                    child_sleep = None
                    if reducer is not None:
                        child_sleep = self._child_sleep(node, reducer, label,
                                                        expanded_keys)
                    # nodes exist for path reconstruction; duplicates that
                    # neither violate nor get expanded never need one
                    child = None
                    if violations:
                        child = _Node(new_state, depth, parent=node,
                                      label=label, steps=steps,
                                      sleep=child_sleep)
                        self._record(result, child, violations)
                        if options.stop_on_first:
                            return self._finish(result, visited, cache,
                                                started)
                    if depth <= options.max_events:
                        if matcher is None:
                            # states_explored counts *distinct* states (an
                            # order-independent metric: depth-improved
                            # revisits re-expand but do not re-count), so a
                            # sharded run sums to the single-worker number
                            fresh = not visited.seen_state(new_state, depth)
                            if fresh and count_distinct is not None:
                                now = count_distinct()
                                is_new = now > last_distinct
                                last_distinct = now
                            else:
                                is_new = fresh
                        else:
                            pruned, child_sleep, is_new = matcher.seen_state(
                                new_state, depth, child_sleep)
                            fresh = not pruned
                        if fresh:
                            if is_new:
                                result.states_explored += 1
                            if depth < options.max_events or new_state.pending:
                                if child is None:
                                    child = _Node(new_state, depth,
                                                  parent=node, label=label,
                                                  steps=steps)
                                child.sleep = child_sleep
                                frontier.push(child)
                    if self._cheap_limits_hit(result):
                        aborted = True
                        break
                    if result.transitions >= next_time_check:
                        next_time_check = result.transitions + check_interval
                        if (telemetry is not None
                                and result.transitions >= next_snapshot):
                            next_snapshot = result.transitions + snapshot_gap
                            telemetry.snapshot(self._progress_fields(
                                result, frontier, visited, cache,
                                node.depth, time.monotonic() - started))
                        if self._time_limit_hit(result, started):
                            aborted = True
                            break
                if aborted:
                    break

        return self._finish(result, visited, cache, started)

    def _make_reducer(self):
        """The independence analysis, when the reduction is applicable."""
        options = self.options
        if (not options.reduction or options.mode == CONCURRENT
                or self.system.enable_failures
                or not self.system.scenario_profile.is_clean):
            # faulted relations (§8 enumeration or a non-clean scenario
            # profile) disable the reduction outright: fault-suffixed
            # labels have no static independence entries, so pruning
            # around them would be unsound
            return None
        from repro.deps.independence import IndependenceAnalysis
        return IndependenceAnalysis(self.system)

    @staticmethod
    def _child_sleep(node, reducer, label, expanded_keys):
        """The sleep set a child inherits through this transition.

        Events slept at the node or expanded earlier from it stay asleep
        below the chosen event exactly when they commute with it - the
        other interleaving order reaches the same states and is already
        (or will be) covered by the sibling branch.
        """
        key = reducer.key_for_label(label)
        if key is None:
            # unidentifiable transition: dependence unknown, wake all
            return _NO_SLEEP
        independent = reducer.independent_cached
        sleeping = [k for k in node.sleep if independent(k, key)]
        sleeping += [k for k in expanded_keys if independent(k, key)]
        expanded_keys.append(key)
        return frozenset(sleeping) if sleeping else _NO_SLEEP

    @staticmethod
    def _sleep_filter(node, reducer, result):
        """The event veto implementing this node's sleep set (None when
        nothing sleeps here)."""
        if reducer is None or not node.sleep:
            return None
        sleep = node.sleep
        reducer_key = reducer.key

        def event_filter(ext):
            if reducer_key(ext) in sleep:
                result.commutes_pruned += 1
                return False
            return True
        return event_filter

    def _node_transitions(self, node, cache, reducer, result):
        """One node's outgoing transitions, through the successor cache.

        A cache entry replays the full expansion of a previously seen
        state - labels, successor states, violations (as clones, since
        the engine mutates violation attribution per path) and steps -
        without executing a single cascade.  Entries are keyed by the
        state fingerprint plus whatever else shapes the expansion: the
        node's sleep set under reduction (it parameterizes the skip
        filter) and, in concurrent mode, whether externals may still be
        injected.
        """
        event_filter = self._sleep_filter(node, reducer, result)
        if cache is None or not cache.enabled:
            return self._search_transitions_from(node, event_filter)
        if node.key is None:
            node.key = node.state.fingerprint()
        cache_key = (node.key, node.sleep)
        if self.options.mode == CONCURRENT:
            cache_key = (node.key, node.sleep,
                         self.options.max_events - node.depth > 0)
        entry = cache.lookup(cache_key)
        if entry is not None:
            return self._replay_transitions(entry)
        return self._record_transitions(node, event_filter, cache, cache_key)

    def _record_transitions(self, node, event_filter, cache, cache_key):
        record = [] if cache.enabled and cache.capacity > 0 else None
        for transition in self._search_transitions_from(node, event_filter):
            if record is not None:
                label, new_state, consumed, violations, steps = transition
                # violations are cached as pristine clones: the engine
                # mutates attribution per path, and cached entries must
                # replay the as-executed values; steps are final once the
                # cascade returns, so the list is shared as-is
                record.append((label, new_state, consumed,
                               tuple(v.clone() for v in violations)
                               if violations else (), steps))
            yield transition
        if record is not None and cache.enabled:
            cache.store(cache_key, record)

    @staticmethod
    def _replay_transitions(entry):
        for label, new_state, consumed, violations, steps in entry:
            yield (label, new_state, consumed,
                   [v.clone() for v in violations] if violations else (),
                   steps)

    def _slab_expansions(self, nodes, cache, reducer, result):
        """Transition lists for a whole frontier slab (codegen tier).

        Cache lookups, empty-expansion stores and recorded entries are
        exactly what the node-at-a-time path would produce; only the
        evaluation of the cache misses is batched (event-class-major)
        through the plan's lean relation.
        """
        options = self.options
        out = [()] * len(nodes)
        jobs = []
        slots = []
        for index, node in enumerate(nodes):
            event_filter = self._sleep_filter(node, reducer, result)
            cache_key = None
            if cache is not None and cache.enabled:
                if node.key is None:
                    node.key = node.state.fingerprint()
                cache_key = (node.key, node.sleep)
                entry = cache.lookup(cache_key)
                if entry is not None:
                    out[index] = self._replay_transitions(entry)
                    continue
                if not cache.enabled:  # the lookup tripped the watchdog
                    cache_key = None
            if node.depth >= options.max_events:
                if cache_key is not None and cache.capacity > 0:
                    cache.store(cache_key, [])
                continue
            jobs.append((node.state, event_filter, None))
            slots.append((index, cache_key))
        if not jobs:
            return out
        evaluated = self._plan.evaluate_slab(jobs, self._monitor_factory)
        for (index, cache_key), transitions in zip(slots, evaluated):
            out[index] = transitions
            if (cache_key is not None and cache.enabled
                    and cache.capacity > 0):
                cache.store(cache_key, [
                    (label, new_state, consumed,
                     tuple(v.clone() for v in violations)
                     if violations else (), steps)
                    for label, new_state, consumed, violations, steps
                    in transitions])
        return out

    def _search_transitions_from(self, node, event_filter=None):
        """The relation the search loop expands: the codegen plan's
        lean (skeleton-trace) relation when active, the traced relation
        otherwise.  Replays and canonicalization always go through
        :meth:`_transitions_from` for full traces."""
        plan = self._plan
        if plan is not None and self.options.mode != CONCURRENT:
            if node.depth >= self.options.max_events:
                return []
            return plan.transitions(node.state, self._monitor_factory,
                                    event_filter)
        return self._transitions_from(node, event_filter)

    def _open_telemetry(self):
        """The run's telemetry session, or None when disabled.

        Shard workers override this to return None: the parent process
        owns the sink/meter/board for a sharded run and workers forward
        compact snapshots over the control queue instead
        (:mod:`repro.engine.parallel`).
        """
        from repro.obs.telemetry import open_session
        return open_session(self.options.telemetry)

    @staticmethod
    def _progress_fields(result, frontier, visited, cache, depth, elapsed):
        """One progress snapshot's payload (read-only observations: the
        search must be byte-identical with telemetry on or off)."""
        fields = {
            "states": result.states_explored,
            "transitions": result.transitions,
            "frontier": len(frontier),
            "depth": depth,
            "elapsed": round(elapsed, 6),
            "visited_bytes": visited.stats().get("approx_bytes", 0),
        }
        if cache is not None:
            lookups = cache.hits + cache.misses
            fields["cache_hits"] = cache.hits
            fields["cache_misses"] = cache.misses
            fields["cache_hit_rate"] = (cache.hits / lookups
                                        if lookups else 0.0)
        return fields

    #: subclasses (the shard workers) defer trace canonicalization to
    #: the parent-side merge instead of paying for it per shard
    canonicalize_traces = True

    #: subclasses (the shard workers) disable the successor cache's
    #: warmup exemption: cross-shard dedup makes repeat fingerprints
    #: structurally rare, so the first rolling window should already
    #: judge the cache (see :class:`_SuccessorCache`)
    cache_grace_warmup = True

    def _finish(self, result, visited, cache, started):
        # trace finalization is part of the run, so it is timed: elapsed
        # (and the states/sec figures derived from it in the bench
        # artifact) must not hide the replay/permutation cost
        finalize_started = time.monotonic()
        if self._plan is not None:
            self._rehydrate_lean_traces(result)
        if self.canonicalize_traces:
            self._canonicalize_traces(result)
        self._phase_times["canonicalize"] = (time.monotonic()
                                             - finalize_started)
        result.elapsed = time.monotonic() - started
        result.visited_stats = visited.stats()
        result.property_stats = self._compiled_properties.stats()
        profile = dict(self._phase_times)
        profile["explore"] = max(0.0, result.elapsed
                                 - sum(self._phase_times.values()))
        result.profile = profile
        if cache is not None:
            result.cache_hits = cache.hits
            result.cache_misses = cache.misses
            result.cache_auto_disabled = cache.auto_disabled
            result.cache_disable_reason = cache.disable_reason
        telemetry = self._telemetry
        if telemetry is not None:
            self._telemetry = None
            for name in sorted(profile):
                telemetry.span(name, profile[name])
            fill_ratio = result.visited_stats.get("fill_ratio")
            if (fill_ratio is not None
                    and fill_ratio > BITSTATE_SATURATION_WARN):
                # a saturating bitstate field silently loses coverage;
                # the warning makes the loss observable in the run sink
                telemetry.warning(
                    "bitstate_saturation", fill_ratio=fill_ratio,
                    stored=result.visited_stats.get("stored", 0),
                    collisions=result.visited_stats.get("collisions", 0))
            telemetry.run_end(result)
            telemetry.close()
        return result

    def _rehydrate_lean_traces(self, result):
        """Regenerate full traces for counterexamples found by the lean
        relation.

        Lean search paths carry skeleton steps - enough for dedup keys
        and app attribution, nothing a human can read.  Each *reported*
        counterexample (a handful, against millions of transitions) has
        its label sequence replayed through the traced relation - which
        runs the same generated executors - and is re-recorded with the
        full cascade steps.
        """
        backup = result.counterexamples
        result.counterexamples = {}
        for key, counterexample in backup.items():
            replayed = replay_path(self, tuple(counterexample.event_labels()))
            if replayed is not None:
                node, violations = replayed
                self._record(result, node, violations)
            elif key not in result.counterexamples:
                # replay fell short (e.g. a truncated search recorded a
                # path the bounded replay cannot reach): keep the
                # skeleton rather than dropping the finding.  A
                # *successful* replay speaks for itself - keeping the
                # skeleton too would duplicate the violation under a
                # stale key whenever the replayed steps refine it
                result.counterexamples[key] = counterexample

    def _canonicalize_traces(self, result):
        """Make recorded traces independent of the expansion order.

        The search records, per violation, the path of whichever
        expansion reached it - under commuting events the same
        violating state can hang below several equal-length prefixes,
        and which one got recorded is an artifact of search (or, in a
        sharded run, queue-arrival) order.  This pass replays every
        valid permutation of each recorded event sequence and keeps the
        canonical minimum via :meth:`_record`'s ordering, so the
        rendered trace is a function of the state space alone - the
        property that lets sharded runs reproduce single-worker traces.

        Keys never appear or disappear: permutations only compete for
        the trace of violations the search itself proved.
        """
        if not result.counterexamples:
            return
        import itertools

        keys_before = set(result.counterexamples)
        for counterexample in list(result.counterexamples.values()):
            labels = counterexample.event_labels()
            if not 1 < len(labels) <= PERMUTE_TRACE_LIMIT:
                continue
            for permuted in sorted(set(itertools.permutations(labels))):
                if list(permuted) == labels:
                    continue
                replayed = replay_path(self, permuted)
                if replayed is None:
                    continue
                node, violations = replayed
                self._record(result, node, violations)
        # a permuted path may end in a violation the (e.g. truncated)
        # search never recorded; canonicalization must not invent keys
        for key in set(result.counterexamples) - keys_before:
            del result.counterexamples[key]

    def _transitions_from(self, node, event_filter=None):
        if self.options.mode == CONCURRENT:
            externals_left = self.options.max_events - node.depth
            return self.system.transitions_concurrent(
                node.state, self._monitor_factory, externals_left,
                event_filter=event_filter)
        if node.depth >= self.options.max_events:
            return []
        return self.system.transitions(node.state, self._monitor_factory,
                                       event_filter=event_filter)

    def _record(self, result, node, violations):
        path = node.path()
        order = path_order_key(path)
        for violation in violations:
            refined = self._role_actors(violation, path)
            if refined:
                violation.apps = refined
            elif not violation.apps:
                # fall back to every app that acted along the path
                violation.apps = _path_actors(path)
            key = violation.dedup_key()
            existing = result.counterexamples.get(key)
            # keep the *canonical* counterexample per distinct violation:
            # the shortest path, ties broken by the event-label sequence.
            # Content-based selection (instead of first-found) makes the
            # reported trace independent of expansion order, so sharded
            # multi-worker runs reproduce the single-worker trace
            if existing is None or order < path_order_key(existing.path):
                result.counterexamples[key] = self._counterexample_cls(
                    violation, path)

    def _role_actors(self, violation, path):
        """For invariant violations: the apps that commanded the property's
        role devices anywhere along the violating run (Table 5/9's "apps
        related to example")."""
        roles = getattr(violation.property, "roles", ())
        if not roles:
            return ()
        role_devices = set()
        for role in roles:
            for name in self.system.role_list(role):
                if isinstance(name, str) and name in self.system.devices:
                    role_devices.add(name)
        if not role_devices:
            return ()
        actors = []
        for _label, steps in path:
            for step in steps:
                if step.kind not in ("command", "mode") or not step.app:
                    continue
                if step.kind == "command":
                    device = step.text.split(".", 1)[0]
                    if device not in role_devices:
                        continue
                if step.app not in actors:
                    actors.append(step.app)
        return tuple(actors)

    def _cheap_limits_hit(self, result):
        """The integer limits - checked exactly, every transition."""
        options = self.options
        if options.max_states and result.states_explored >= options.max_states:
            result.truncated = True
            result.truncated_reason = "max_states"
            return True
        if (options.max_transitions
                and result.transitions >= options.max_transitions):
            result.truncated = True
            result.truncated_reason = "max_transitions"
            return True
        return False

    def _time_limit_hit(self, result, started):
        options = self.options
        if options.time_limit and time.monotonic() - started > options.time_limit:
            result.truncated = True
            result.truncated_reason = "time_limit"
            return True
        return False

    def _limits_hit(self, result, started):
        return (self._cheap_limits_hit(result)
                or self._time_limit_hit(result, started))


def replay_path(engine, labels):
    """Drive the transition relation along one event-label sequence.

    Returns ``(final node, violations of the final transition)`` or
    ``None`` when the sequence does not replay to a violating
    transition.  Labels deterministically identify transitions, so a
    successful replay regenerates the exact cascade steps - this is how
    the trace canonicalization and the sharded parent rebuild rendered
    counterexamples without trusting any recorded path.
    """
    node = _Node(engine.system.initial_state(), 0)
    violations = []
    for label in labels:
        matched = None
        for transition in engine._transitions_from(node):
            if transition[0] == label:
                matched = transition
                break
        if matched is None:
            return None
        _label, new_state, consumed, violations, steps = matched
        node = _Node(new_state, node.depth + (1 if consumed else 0),
                     parent=node, label=label, steps=steps)
    if not violations:
        return None
    return node, violations


def path_order_key(path):
    """The canonical order of counterexample paths: shortest first, then
    by the external-event label sequence.

    Both the sequential recorder and the sharded merge
    (:mod:`repro.engine.parallel`) select the minimum under this key, so
    every run of the same system reports the same trace per violation
    regardless of worker count or expansion order.
    """
    return (len(path), tuple(label for label, _steps in path))


def _path_actors(path):
    """Apps that issued commands or mode changes along a violating run."""
    actors = []
    for _label, steps in path:
        for step in steps:
            if step.kind in ("command", "mode") and step.app:
                if step.app not in actors:
                    actors.append(step.app)
    return tuple(actors)


def verify(system, properties, **option_kwargs):
    """Convenience: build options, run, return the result."""
    return ExplorationEngine(system, properties,
                             EngineOptions(**option_kwargs)).run()
