"""The exploration engine: bounded search over external-event permutations.

"The model checker enumerates all possible permutations of the input
physical events up to a maximum number of events per user's configuration
to exhaustively verify the system." (§8, Algorithm 1.)

Used as a *falsifier* (§2.3): the search records a counterexample per
violated property and keeps exploring until the bounded state space is
exhausted or a limit trips.  The engine is assembled from three pluggable
parts - a :class:`~repro.engine.frontier.Frontier` (expansion order), a
VisitedStore (pruning) and the transition relation of the system under
test - so strategies and stores swap without touching the search itself.
"""

import gc
import time

from repro.engine.options import CONCURRENT, EngineOptions
from repro.engine.result import ExplorationResult


class _Node:
    """A search node with parent links for counterexample reconstruction.

    ``key`` caches the state's 64-bit fingerprint (the successor-cache
    key) and ``ext_key`` the identity of the external event that produced
    the node (the independence reduction's "previous event") - both are
    computed at most once per node instead of per loop iteration.
    """

    __slots__ = ("state", "depth", "parent", "label", "steps", "key",
                 "ext_key")

    def __init__(self, state, depth, parent=None, label=None, steps=(),
                 ext_key=None):
        self.state = state
        self.depth = depth
        self.parent = parent
        self.label = label
        self.steps = steps
        self.key = None
        self.ext_key = ext_key

    def path(self):
        chain = []
        node = self
        while node.parent is not None:
            chain.append((node.label, list(node.steps)))
            node = node.parent
        chain.reverse()
        return chain


class ExplorationEngine:
    """Runs the bounded search on one :class:`~repro.model.system.IoTSystem`."""

    def __init__(self, system, properties, options=None):
        # imported here: repro.checker's package init re-exports this
        # module's shim, so a top-level import would be circular
        from repro.checker.compiled import CompiledProperties
        from repro.checker.monitor import SafetyMonitor
        from repro.checker.violations import Counterexample

        self.system = system
        self.properties = list(properties)
        self.options = options or EngineOptions()
        self._monitor_cls = SafetyMonitor
        self._counterexample_cls = Counterexample
        # partition properties and resolve applicability once per engine;
        # every per-cascade monitor shares this compiled set.  The verdict
        # memo is hash-keyed (physical projection, ~2^-64 collisions), so
        # the "exact" store - whose contract is no hash shortcuts at all -
        # turns it off and re-evaluates invariants on every quiescent state
        self._compiled_properties = CompiledProperties(
            system, self.properties,
            memoize=self.options.visited != "exact")

    def _monitor_factory(self):
        return self._monitor_cls(self.system, self.properties,
                                 compiled=self._compiled_properties)

    def run(self):
        """Explore; returns an :class:`ExplorationResult`."""
        restore_gc = self.options.manage_gc and gc.isenabled()
        if restore_gc:
            # the search churns through millions of short-lived acyclic
            # objects; gen-0 sweeps cost ~1/3 of wall clock and reclaim
            # nothing that reference counting doesn't
            gc.disable()
        try:
            return self._run()
        finally:
            if restore_gc:
                gc.enable()

    def _run(self):
        options = self.options
        # the execution back-end is a per-run choice (--no-compile flips
        # the same system back to the tree-interpreter oracle)
        self.system.use_compiled = options.compiled
        result = ExplorationResult()
        started = time.monotonic()
        visited = options.make_visited()
        frontier = options.make_frontier()

        cache = None
        if options.successor_cache:
            cache = {}
            result.cache_mode = "fingerprint"
        reducer = self._make_reducer()

        root = _Node(self.system.initial_state(), 0)
        visited.seen_state(root.state, 0)
        result.states_explored = 1
        frontier.push(root)

        # wall-clock reads are hoisted out of the transition loop: the
        # cheap integer limits stay exact per transition, the time limit
        # is only sampled every ``check_interval`` transitions and once
        # per expansion
        check_interval = max(1, options.check_interval)
        next_time_check = check_interval

        while frontier:
            if self._limits_hit(result, started):
                break
            node = frontier.pop()
            for transition in self._node_transitions(node, cache, reducer,
                                                     result):
                label, new_state, consumed, violations, steps = transition
                result.transitions += 1
                depth = node.depth + (1 if consumed else 0)
                # nodes exist for path reconstruction; duplicates that
                # neither violate nor get expanded never need one
                child = None
                if violations:
                    child = _Node(new_state, depth, parent=node, label=label,
                                  steps=steps,
                                  ext_key=(reducer.key_for_label(label)
                                           if reducer is not None else None))
                    self._record(result, child, violations)
                    if options.stop_on_first:
                        return self._finish(result, visited, started)
                if (depth <= options.max_events
                        and not visited.seen_state(new_state, depth)):
                    result.states_explored += 1
                    if depth < options.max_events or new_state.pending:
                        if child is None:
                            child = _Node(
                                new_state, depth, parent=node, label=label,
                                steps=steps,
                                ext_key=(reducer.key_for_label(label)
                                         if reducer is not None else None))
                        frontier.push(child)
                if self._cheap_limits_hit(result):
                    break
                if result.transitions >= next_time_check:
                    next_time_check = result.transitions + check_interval
                    if self._time_limit_hit(result, started):
                        break

        return self._finish(result, visited, started)

    def _make_reducer(self):
        """The independence analysis, when the reduction is applicable."""
        options = self.options
        if (not options.reduction or options.mode == CONCURRENT
                or self.system.enable_failures):
            return None
        from repro.deps.independence import IndependenceAnalysis
        return IndependenceAnalysis(self.system)

    def _node_transitions(self, node, cache, reducer, result):
        """One node's outgoing transitions, through the successor cache.

        A cache entry replays the full expansion of a previously seen
        state - labels, successor states, violations (as clones, since
        the engine mutates violation attribution per path) and steps -
        without executing a single cascade.  Entries are keyed by the
        state fingerprint plus whatever else shapes the expansion: the
        arriving event under reduction (it parameterizes the skip filter)
        and, in concurrent mode, whether externals may still be injected.
        """
        event_filter = None
        if reducer is not None and node.ext_key is not None:
            prev_key = node.ext_key

            def event_filter(ext):
                if reducer.should_skip(prev_key, ext):
                    result.commutes_pruned += 1
                    return False
                return True

        if cache is None:
            return self._transitions_from(node, event_filter)
        if node.key is None:
            node.key = node.state.fingerprint()
        cache_key = (node.key, node.ext_key)
        if self.options.mode == CONCURRENT:
            cache_key = (node.key, node.ext_key,
                         self.options.max_events - node.depth > 0)
        entry = cache.get(cache_key)
        if entry is not None:
            result.cache_hits += 1
            return self._replay_transitions(entry)
        result.cache_misses += 1
        return self._record_transitions(node, event_filter, cache, cache_key)

    def _record_transitions(self, node, event_filter, cache, cache_key):
        record = [] if len(cache) < self.options.cache_limit else None
        for transition in self._transitions_from(node, event_filter):
            if record is not None:
                label, new_state, consumed, violations, steps = transition
                # violations are cached as pristine clones: the engine
                # mutates attribution per path, and cached entries must
                # replay the as-executed values; steps are final once the
                # cascade returns, so the list is shared as-is
                record.append((label, new_state, consumed,
                               tuple(v.clone() for v in violations)
                               if violations else (), steps))
            yield transition
        if record is not None:
            cache[cache_key] = record

    @staticmethod
    def _replay_transitions(entry):
        for label, new_state, consumed, violations, steps in entry:
            yield (label, new_state, consumed,
                   [v.clone() for v in violations] if violations else (),
                   steps)

    def _finish(self, result, visited, started):
        result.elapsed = time.monotonic() - started
        result.visited_stats = visited.stats()
        result.property_stats = self._compiled_properties.stats()
        return result

    def _transitions_from(self, node, event_filter=None):
        if self.options.mode == CONCURRENT:
            externals_left = self.options.max_events - node.depth
            return self.system.transitions_concurrent(
                node.state, self._monitor_factory, externals_left,
                event_filter=event_filter)
        if node.depth >= self.options.max_events:
            return []
        return self.system.transitions(node.state, self._monitor_factory,
                                       event_filter=event_filter)

    def _record(self, result, node, violations):
        path = node.path()
        for violation in violations:
            refined = self._role_actors(violation, path)
            if refined:
                violation.apps = refined
            elif not violation.apps:
                # fall back to every app that acted along the path
                violation.apps = _path_actors(path)
            key = violation.dedup_key()
            if key not in result.counterexamples:
                result.counterexamples[key] = self._counterexample_cls(
                    violation, path)

    def _role_actors(self, violation, path):
        """For invariant violations: the apps that commanded the property's
        role devices anywhere along the violating run (Table 5/9's "apps
        related to example")."""
        roles = getattr(violation.property, "roles", ())
        if not roles:
            return ()
        role_devices = set()
        for role in roles:
            for name in self.system.role_list(role):
                if isinstance(name, str) and name in self.system.devices:
                    role_devices.add(name)
        if not role_devices:
            return ()
        actors = []
        for _label, steps in path:
            for step in steps:
                if step.kind not in ("command", "mode") or not step.app:
                    continue
                if step.kind == "command":
                    device = step.text.split(".", 1)[0]
                    if device not in role_devices:
                        continue
                if step.app not in actors:
                    actors.append(step.app)
        return tuple(actors)

    def _cheap_limits_hit(self, result):
        """The integer limits - checked exactly, every transition."""
        options = self.options
        if options.max_states and result.states_explored >= options.max_states:
            result.truncated = True
            result.truncated_reason = "max_states"
            return True
        if (options.max_transitions
                and result.transitions >= options.max_transitions):
            result.truncated = True
            result.truncated_reason = "max_transitions"
            return True
        return False

    def _time_limit_hit(self, result, started):
        options = self.options
        if options.time_limit and time.monotonic() - started > options.time_limit:
            result.truncated = True
            result.truncated_reason = "time_limit"
            return True
        return False

    def _limits_hit(self, result, started):
        return (self._cheap_limits_hit(result)
                or self._time_limit_hit(result, started))


def _path_actors(path):
    """Apps that issued commands or mode changes along a violating run."""
    actors = []
    for _label, steps in path:
        for step in steps:
            if step.kind in ("command", "mode") and step.app:
                if step.app not in actors:
                    actors.append(step.app)
    return tuple(actors)


def verify(system, properties, **option_kwargs):
    """Convenience: build options, run, return the result."""
    return ExplorationEngine(system, properties,
                             EngineOptions(**option_kwargs)).run()
