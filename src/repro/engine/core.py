"""The exploration engine: bounded search over external-event permutations.

"The model checker enumerates all possible permutations of the input
physical events up to a maximum number of events per user's configuration
to exhaustively verify the system." (§8, Algorithm 1.)

Used as a *falsifier* (§2.3): the search records a counterexample per
violated property and keeps exploring until the bounded state space is
exhausted or a limit trips.  The engine is assembled from three pluggable
parts - a :class:`~repro.engine.frontier.Frontier` (expansion order), a
VisitedStore (pruning) and the transition relation of the system under
test - so strategies and stores swap without touching the search itself.
"""

import time

from repro.engine.options import CONCURRENT, EngineOptions
from repro.engine.result import ExplorationResult


class _Node:
    """A search node with parent links for counterexample reconstruction."""

    __slots__ = ("state", "depth", "parent", "label", "steps")

    def __init__(self, state, depth, parent=None, label=None, steps=()):
        self.state = state
        self.depth = depth
        self.parent = parent
        self.label = label
        self.steps = steps

    def path(self):
        chain = []
        node = self
        while node.parent is not None:
            chain.append((node.label, list(node.steps)))
            node = node.parent
        chain.reverse()
        return chain


class ExplorationEngine:
    """Runs the bounded search on one :class:`~repro.model.system.IoTSystem`."""

    def __init__(self, system, properties, options=None):
        # imported here: repro.checker's package init re-exports this
        # module's shim, so a top-level import would be circular
        from repro.checker.monitor import SafetyMonitor
        from repro.checker.violations import Counterexample

        self.system = system
        self.properties = list(properties)
        self.options = options or EngineOptions()
        self._monitor_cls = SafetyMonitor
        self._counterexample_cls = Counterexample

    def _monitor_factory(self):
        return self._monitor_cls(self.system, self.properties)

    def run(self):
        """Explore; returns an :class:`ExplorationResult`."""
        options = self.options
        result = ExplorationResult()
        started = time.monotonic()
        visited = options.make_visited()
        frontier = options.make_frontier()

        root = _Node(self.system.initial_state(), 0)
        visited.seen_before(visited.state_key(root.state), 0)
        result.states_explored = 1
        frontier.push(root)

        while frontier:
            if self._limits_hit(result, started):
                break
            node = frontier.pop()
            for transition in self._transitions_from(node):
                label, new_state, consumed, violations, steps = transition
                result.transitions += 1
                depth = node.depth + (1 if consumed else 0)
                child = _Node(new_state, depth, parent=node, label=label,
                              steps=steps)
                if violations:
                    self._record(result, child, violations)
                    if options.stop_on_first:
                        return self._finish(result, visited, started)
                if depth > options.max_events:
                    continue
                if not visited.seen_before(visited.state_key(new_state),
                                           depth):
                    result.states_explored += 1
                    if depth < options.max_events or new_state.pending:
                        frontier.push(child)
                if self._limits_hit(result, started):
                    break

        return self._finish(result, visited, started)

    def _finish(self, result, visited, started):
        result.elapsed = time.monotonic() - started
        result.visited_stats = visited.stats()
        return result

    def _transitions_from(self, node):
        if self.options.mode == CONCURRENT:
            externals_left = self.options.max_events - node.depth
            return self.system.transitions_concurrent(
                node.state, self._monitor_factory, externals_left)
        if node.depth >= self.options.max_events:
            return []
        return self.system.transitions(node.state, self._monitor_factory)

    def _record(self, result, node, violations):
        path = node.path()
        for violation in violations:
            refined = self._role_actors(violation, path)
            if refined:
                violation.apps = refined
            elif not violation.apps:
                # fall back to every app that acted along the path
                violation.apps = _path_actors(path)
            key = violation.dedup_key()
            if key not in result.counterexamples:
                result.counterexamples[key] = self._counterexample_cls(
                    violation, path)

    def _role_actors(self, violation, path):
        """For invariant violations: the apps that commanded the property's
        role devices anywhere along the violating run (Table 5/9's "apps
        related to example")."""
        roles = getattr(violation.property, "roles", ())
        if not roles:
            return ()
        role_devices = set()
        for role in roles:
            for name in self.system.role_list(role):
                if isinstance(name, str) and name in self.system.devices:
                    role_devices.add(name)
        if not role_devices:
            return ()
        actors = []
        for _label, steps in path:
            for step in steps:
                if step.kind not in ("command", "mode") or not step.app:
                    continue
                if step.kind == "command":
                    device = step.text.split(".", 1)[0]
                    if device not in role_devices:
                        continue
                if step.app not in actors:
                    actors.append(step.app)
        return tuple(actors)

    def _limits_hit(self, result, started):
        options = self.options
        if options.max_states and result.states_explored >= options.max_states:
            result.truncated = True
            result.truncated_reason = "max_states"
            return True
        if (options.max_transitions
                and result.transitions >= options.max_transitions):
            result.truncated = True
            result.truncated_reason = "max_transitions"
            return True
        if options.time_limit and time.monotonic() - started > options.time_limit:
            result.truncated = True
            result.truncated_reason = "time_limit"
            return True
        return False


def _path_actors(path):
    """Apps that issued commands or mode changes along a violating run."""
    actors = []
    for _label, steps in path:
        for step in steps:
            if step.kind in ("command", "mode") and step.app:
                if step.app not in actors:
                    actors.append(step.app)
    return tuple(actors)


def verify(system, properties, **option_kwargs):
    """Convenience: build options, run, return the result."""
    return ExplorationEngine(system, properties,
                             EngineOptions(**option_kwargs)).run()
