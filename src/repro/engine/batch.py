"""Parallel batch verification: fan independent systems across processes.

Every large experiment in the paper - the six market groups of Table 5,
the 70 volunteer configurations of Table 6, the ten-rule IFTTT home of
Table 9, the scaling points of Table 8 - verifies *independent* systems.
:func:`verify_many` runs such a job list on a ``ProcessPoolExecutor``
with per-job options and merges the statistics into one
:class:`~repro.engine.result.BatchResult`.

Jobs are described declaratively (a configuration + options + property
selection) rather than as built systems, so they pickle cheaply: each
worker process parses the bundled corpus once and builds its own systems.
"""

import os
import time

from repro.engine.options import EngineOptions

#: registry specs resolvable inside a worker process
REGISTRY_CORPUS = "corpus"
REGISTRY_CORPUS_IFTTT = "corpus+ifttt"

_REGISTRY_CACHE = {}


class VerificationJob:
    """One independent verification: a deployment plus run options.

    ``properties`` may be ``None`` (full 45-property catalog), a list of
    property ids/categories (resolved through the catalog) or a list of
    property objects (must be picklable).  ``select`` applies the
    relevance-based selection of §8 after resolution.  ``registry`` is a
    spec string (``"corpus"`` / ``"corpus+ifttt"``) or an explicit
    name -> SmartApp mapping.  ``sources`` optionally overlays raw Groovy
    sources (name -> text) onto the registry - the submit-from-file path
    of the vetting service: raw text pickles cheaply and each worker
    parses it on first use.
    """

    def __init__(self, name, config, options=None, properties=None,
                 select=True, registry=REGISTRY_CORPUS, strict=True,
                 enable_failures=False, user_mode_events=False,
                 sources=None):
        self.name = name
        self.config = config
        self.options = options or EngineOptions()
        self.properties = properties
        self.select = select
        self.registry = registry
        self.strict = strict
        self.enable_failures = enable_failures
        self.user_mode_events = user_mode_events
        self.sources = dict(sources) if sources else None

    def cache_key(self):
        """The content-addressed result-store key of this job.

        A SHA-256 over the canonical serialization of the configuration
        (declaration-order independent), the referenced apps' handler
        sources, the property selection and the semantic engine options -
        see :mod:`repro.service.digest` for the exact rules.
        """
        from repro.service.digest import job_cache_key
        return job_cache_key(self)

    def config_digest(self):
        """Digest of the deployment alone (groups results across options)."""
        from repro.service.digest import job_config_digest
        return job_config_digest(self)

    def __repr__(self):
        return "VerificationJob(%r)" % (self.name,)


def _resolve_registry(spec):
    if isinstance(spec, dict):
        return spec
    cached = _REGISTRY_CACHE.get(spec)
    if cached is not None:
        return cached
    from repro.corpus import load_all_apps

    registry = load_all_apps()
    if spec == REGISTRY_CORPUS_IFTTT:
        from repro.ifttt.table9 import table9_registry
        registry.update(table9_registry())
    elif spec != REGISTRY_CORPUS:
        raise KeyError("unknown registry spec %r" % (spec,))
    _REGISTRY_CACHE[spec] = registry
    return registry


def _resolve_properties(job, system):
    from repro.properties import build_properties, select_relevant

    properties = job.properties
    if properties is None:
        properties = build_properties()
    elif all(isinstance(p, str) for p in properties):
        properties = build_properties(properties)
    if job.select:
        properties = select_relevant(system, properties)
    return properties


def overlay_sources(registry, sources):
    """A registry copy with raw Groovy sources (name -> text) parsed in.

    Shared by job execution, cache-key derivation and trace re-rendering:
    all three must rebuild the *same* registry for a job, so the parse
    order and synthesized file names live in exactly one place.
    """
    if not sources:
        return registry
    from repro.smartapp import load_app

    registry = dict(registry)
    for name in sorted(sources):
        app = load_app(sources[name], "%s.groovy" % name)
        registry[app.name] = app
    return registry


def resolve_job_registry(job):
    """The registry a job runs against: spec plus raw-source overlays."""
    return overlay_sources(_resolve_registry(job.registry), job.sources)


def build_job_context(job):
    """``(system, properties)`` for one job, built in this process.

    The declarative job description resolves to a live bound system:
    registry spec plus raw-source overlays, a strict-or-lenient model
    build, then property resolution and relevance selection.  Shared by
    inline execution, every shard worker of a sharded run, and the
    parent-side counterexample replay - all of which must rebuild the
    *same* system for a job.
    """
    from repro.model.generator import ModelGenerator

    registry = resolve_job_registry(job)
    system = ModelGenerator(registry).build(
        job.config, strict=job.strict, enable_failures=job.enable_failures,
        user_mode_events=job.user_mode_events)
    return system, _resolve_properties(job, system)


def execute_job_inline(job):
    """Build and verify one job in this process, one worker, no routing."""
    from repro.engine.core import ExplorationEngine

    system, properties = build_job_context(job)
    return ExplorationEngine(system, properties, job.options).run()


def execute_job(job):
    """Build and verify one job (runs inside the worker process).

    A swarm-mode job always runs inline - the swarm driver launches its
    own member searches and sharding a sampled run would only re-shuffle
    what the members already diversify.  A job whose options request
    shard workers (``workers > 1``) runs through the sharded
    multi-process engine (:func:`repro.engine.parallel.explore_sharded`);
    everything else runs the classic in-process search.
    """
    from repro.engine.options import SWARM
    if getattr(job.options, "mode", None) == SWARM:
        return execute_job_inline(job)
    if getattr(job.options, "workers", 1) and job.options.workers > 1:
        from repro.engine.parallel import explore_sharded
        return explore_sharded(job)
    return execute_job_inline(job)


def _execute_named(job):
    return job.name, execute_job(job)


def default_workers(job_count):
    """Workers for a batch: one per job up to the machine's cores."""
    return max(1, min(job_count, os.cpu_count() or 1))


def verify_many(jobs, workers=None, timeout=None):
    """Verify independent jobs in parallel; returns a :class:`BatchResult`.

    ``workers=None`` sizes the pool to ``min(len(jobs), cpu_count)``;
    ``workers=1`` (or a single job) runs inline without spawning
    processes, which also serves as the fallback for unpicklable jobs.

    ``timeout`` (seconds per job, ``None`` = unbounded) is a hard
    wall-clock backstop for the *pooled* path: when the batch exceeds
    its budget (``timeout`` scaled by the number of pool waves,
    ``ceil(jobs/workers)``), unfinished jobs are recorded as errors and
    the pool is abandoned without waiting - a worker hung in a
    non-cooperative loop can therefore never wedge the caller.  The
    inline path cannot preempt a running engine; callers wanting
    cooperative per-job bounds there should set
    ``EngineOptions.time_limit`` (the scheduler sets both).
    """
    from repro.engine.result import BatchResult

    jobs = list(jobs)
    names = [job.name for job in jobs]
    if len(set(names)) != len(names):
        duplicates = sorted({name for name in names if names.count(name) > 1})
        raise ValueError("duplicate job name(s) %s: results are keyed by "
                         "name, so duplicates would silently merge"
                         % ", ".join(repr(name) for name in duplicates))
    if workers is None:
        workers = default_workers(len(jobs))
    batch = BatchResult()
    batch.workers = workers
    started = time.monotonic()
    if workers <= 1 or len(jobs) <= 1:
        batch.workers = 1
        for job in jobs:
            try:
                batch.add(job.name, execute_job(job))
            except Exception as exc:  # surface per-job failures, keep going
                batch.add_error(job.name, "%s: %s" % (type(exc).__name__, exc))
        batch.elapsed = time.monotonic() - started
        return batch

    return _verify_many_pooled(jobs, workers, batch, started, timeout)


def _warm_registries(jobs):
    """Parse each referenced corpus registry once in the parent process.

    Under the default fork start method the workers inherit the parsed
    corpus through copy-on-write memory, so no worker pays the parse
    cost; under spawn the warm-up is merely redundant.
    """
    for spec in {job.registry for job in jobs if isinstance(job.registry, str)}:
        _resolve_registry(spec)


def _verify_many_pooled(jobs, workers, batch, started, timeout=None):
    from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

    _warm_registries(jobs)
    # not a ``with`` block: the context manager's __exit__ waits for
    # every worker, so a single hung job would wedge the caller forever
    # even after its deadline passed
    pool = ProcessPoolExecutor(max_workers=workers)
    futures = {pool.submit(_execute_named, job): job for job in jobs}
    outcomes = {}
    pending = set(futures)
    deadline = None
    if timeout is not None:
        # the budget is per *job*, scaled by pool queuing: with W
        # workers the last of N jobs may legitimately start
        # (ceil(N/W) - 1) budgets late, so the batch as a whole gets
        # one budget per wave
        waves = -(-len(jobs) // workers)
        deadline = started + timeout * waves
    timed_out = False
    while pending:
        budget = (None if deadline is None
                  else max(0.0, deadline - time.monotonic()))
        done, pending = wait(pending, timeout=budget,
                             return_when=FIRST_COMPLETED)
        if not done and pending:
            timed_out = True
            break
        for future in done:
            job = futures[future]
            try:
                name, result = future.result()
                outcomes[name] = result
            except Exception as exc:
                batch.add_error(job.name,
                                "%s: %s" % (type(exc).__name__, exc))
    if timed_out:
        for future in pending:
            job = futures[future]
            if future.cancel():
                batch.add_error(job.name,
                                "timed out: not started within the batch "
                                "budget (%gs per job)" % timeout)
            elif future.done():
                try:  # finished in the window between wait() and here
                    name, result = future.result()
                    outcomes[name] = result
                except Exception as exc:
                    batch.add_error(job.name,
                                    "%s: %s" % (type(exc).__name__, exc))
            else:
                batch.add_error(job.name, "timed out after %gs" % timeout)
        # abandon the pool: cancel what never started, and kill the
        # workers outright - concurrent.futures' atexit hook would
        # otherwise join the hung worker at interpreter exit, wedging
        # the whole process *after* this call correctly returned
        # snapshot first: shutdown() clears the executor's process table
        # even with wait=False
        processes = list((getattr(pool, "_processes", None) or {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for proc in processes:
            proc.terminate()
        for proc in processes:
            proc.join(timeout=1.0)
            if proc.is_alive():  # wedged in a SIGTERM-ignoring section
                proc.kill()
    else:
        pool.shutdown()
    for job in jobs:  # preserve submission order in the merged report
        if job.name in outcomes:
            batch.add(job.name, outcomes[job.name])
    batch.elapsed = time.monotonic() - started
    return batch
