"""The VisitedStore protocol, fingerprint/COLLAPSE/bitstate/spill stores.

A visited store answers one question - "was this state already expanded
at an equal-or-smaller depth?" - through three methods:

``seen_state(state, depth)``
    The engine's entry point: record the state; return ``True`` when it
    may be pruned.  Lets each store pick its own keying (the exact store
    buckets by fingerprint first and only canonicalizes duplicates; the
    approximate stores hash the one-word fingerprint directly).  States
    must not be mutated after submission - the exact store may
    canonicalize them lazily.

``state_key(state)`` / ``seen_before(key, depth)``
    The explicit-key protocol, kept for callers that manage keys
    themselves (tests, external tools, the engine's sleep-set state
    matcher).  ``state_key`` projects a
    :class:`~repro.model.state.ModelState` onto the store's key form;
    ``seen_before`` records it.

``distinct_count()``
    O(1) count of distinct states stored so far (a depth-improved
    revisit does not grow it).  The engine samples it around each
    ``seen_state`` call to keep ``states_explored`` a *distinct-state*
    count - an order-independent metric, which is what lets a sharded
    multi-worker run report exactly the single-worker number.

The exact and BITSTATE stores live in :mod:`repro.checker.visited` (their
historical home, kept for compatibility); this module re-exports them and
adds the fingerprint set and the collapse-compressed store.
"""

import os
import struct
import sys

from repro.checker.visited import BitStateTable, ExactVisitedSet
from repro.model.schema import ABSENT as _ABSENT

__all__ = ["BitStateTable", "BitStateVisitedSet", "CollapseVisitedSet",
           "ExactVisitedSet", "FingerprintVisitedSet", "SpillVisitedStore"]

_MASK64 = (1 << 64) - 1
#: the 64-bit golden-ratio increment (splitmix64's gamma)
_GAMMA = 0x9E3779B97F4A7C15


def _mix64(value):
    """splitmix64's finalizer: a full-avalanche 64-bit permutation."""
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


class FingerprintVisitedSet(ExactVisitedSet):
    """Depth-aware exact-set over 64-bit fingerprints.

    Same depth-aware pruning as :class:`ExactVisitedSet`, but keyed by
    one machine word per state instead of the full canonical key; like
    BITSTATE it admits false positives (two distinct states sharing a
    fingerprint, probability ~2^-64 per pair) but never false negatives.
    """

    @staticmethod
    def state_key(state):
        """The one-word 64-bit fingerprint (this store's key form)."""
        return state.fingerprint()

    def seen_state(self, state, depth):
        """Record by fingerprint; True when prunable at this depth."""
        return self.seen_before(state.fingerprint(), depth)

    def stats(self):
        """``stored``/``approx_bytes``/``bytes_per_state`` counters."""
        stored = len(self._min_depth)
        # dict table + one boxed 64-bit int key per state (depth values
        # are small ints, interned by CPython)
        approx = sys.getsizeof(self._min_depth) + stored * 32
        return {"stored": stored, "approx_bytes": approx,
                "bytes_per_state": round(approx / stored, 1) if stored else 0.0}


class BitStateVisitedSet:
    """Holzmann-style supertrace store over 64-bit state fingerprints.

    Each admitted state sets ``hash_count`` bits (independent splitmix64
    mixes of the fingerprint, optionally salted) in a ``2**bits_log2``-bit
    field; a state is pruned when *all* its bits were already set.  Like
    every bitstate scheme it trades exactness for a fixed memory
    footprint: distinct states may collide on a full bit pattern and be
    wrongly pruned (missed coverage - why swarm verdicts are *partial*),
    but a state the store has admitted is never forgotten, so there are
    no false negatives on revisits.  Unlike the exact stores it keeps no
    per-state depth - a revisit at smaller depth is pruned too, another
    (deliberate, Spin-compatible) source of partial coverage.

    ``salt`` remaps every bit position, giving swarm members independent
    collision patterns over one shared fingerprint function; the fill
    ratio is tracked incrementally (O(1) per insert) so saturation can be
    reported live by telemetry rather than recomputed by popcount.
    """

    def __init__(self, bits_log2=23, hash_count=3, salt=0):
        if bits_log2 < 3:
            raise ValueError("bits_log2 must be >= 3, got %r" % (bits_log2,))
        if hash_count < 1:
            raise ValueError("hash_count must be >= 1, got %r"
                             % (hash_count,))
        self.bits = 1 << bits_log2
        self.hash_count = hash_count
        self.salt = salt & _MASK64
        self._mask = self.bits - 1
        self._field = bytearray(self.bits >> 3)
        self.stored = 0
        self.collisions = 0
        self._set_bits = 0

    @staticmethod
    def state_key(state):
        """The one-word 64-bit fingerprint (this store's key form)."""
        return state.fingerprint()

    def seen_state(self, state, depth):
        """Record by fingerprint; True when all its bits were set."""
        return self.seen_before(state.fingerprint(), depth)

    def bit_positions(self, key):
        """The ``hash_count`` field positions of one key (test hook)."""
        value = _mix64((int(key) ^ self.salt) & _MASK64)
        positions = []
        for _ in range(self.hash_count):
            positions.append(value & self._mask)
            value = _mix64((value + _GAMMA) & _MASK64)
        return positions

    def seen_before(self, key, depth):
        """Record an explicit key; True prunes (depth is ignored - the
        bit field stores no per-state depth, see the class doc)."""
        field = self._field
        missing = []
        for position in self.bit_positions(key):
            byte, bit = position >> 3, 1 << (position & 7)
            # two hashes can land on one bit (likely in a small or
            # saturated field); dedup so the fill count stays honest
            if not field[byte] & bit and (byte, bit) not in missing:
                missing.append((byte, bit))
        if not missing:
            self.collisions += 1
            return True
        for byte, bit in missing:
            field[byte] |= bit
        self._set_bits += len(missing)
        self.stored += 1
        return False

    @property
    def fill_ratio(self):
        """Fraction of field bits set - the saturation signal (O(1))."""
        return self._set_bits / self.bits

    def distinct_count(self):
        """Admitted states so far (collisions excluded) - O(1)."""
        return self.stored

    def stats(self):
        """Counters incl. ``fill_ratio`` for saturation reporting."""
        return {
            "stored": self.stored,
            "collisions": self.collisions,
            "fill_ratio": round(self.fill_ratio, 6),
            "hash_count": self.hash_count,
            "salt": self.salt,
            "approx_bytes": len(self._field),
            "bytes_per_state": (round(len(self._field) / self.stored, 1)
                                if self.stored else 0.0),
        }

    def __len__(self):
        return self.stored


class SpillVisitedStore:
    """Disk-backed depth-aware visited store (SQLite behind the protocol).

    Keys are the 64-bit state fingerprints; each is one row in a
    single-table SQLite database, so the working set spills to disk and
    an exhaustive run's peak RSS stays bounded by the write buffer plus
    the read cache plus SQLite's page cache instead of growing with the
    state space.  Semantics match :class:`FingerprintVisitedSet` exactly
    (depth-aware: a smaller-depth revisit is re-expanded and the stored
    minimum depth is lowered) - only the residence changes.

    Writes are buffered and flushed in batches through an
    ``ON CONFLICT .. WHERE excluded.depth < depth`` min-depth upsert;
    reads consult the buffer first, then a bounded LRU of recently
    checked keys, then the database.  The file is durable across
    ``close``/reopen - ``distinct_count`` and the stored depths survive a
    spill/reload round-trip - but crash durability is deliberately traded
    away (``journal_mode=OFF``, ``synchronous=OFF``): a visited set is a
    cache of a deterministic search, so the recovery story is "rerun".

    When constructed without a ``path`` the store owns a temporary
    directory and removes it on ``close`` (or at garbage collection).
    """

    #: pending writes buffered before one batched upsert
    FLUSH_BATCH = 8192

    def __init__(self, path=None, cache_limit=65536, page_cache_kib=4096):
        import sqlite3
        self._own_dir = None
        if path is None:
            import tempfile
            self._own_dir = tempfile.mkdtemp(prefix="repro-spill-")
            path = os.path.join(self._own_dir, "visited.sqlite")
        self.path = path
        self.cache_limit = int(cache_limit)
        self._conn = sqlite3.connect(path)
        self._conn.execute("PRAGMA journal_mode=OFF")
        self._conn.execute("PRAGMA synchronous=OFF")
        self._conn.execute("PRAGMA cache_size=%d" % -abs(int(page_cache_kib)))
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS visited ("
            "key INTEGER PRIMARY KEY, depth INTEGER NOT NULL)")
        row = self._conn.execute("SELECT COUNT(*) FROM visited").fetchone()
        self._distinct = int(row[0])
        #: unflushed key -> depth (authoritative over the database)
        self._pending = {}
        #: bounded read cache of recently checked keys (insertion-ordered
        #: dict used as an LRU: hits are reinserted at the end)
        self._cache = {}

    @staticmethod
    def _signed(key):
        """Map a u64 fingerprint onto SQLite's signed INTEGER domain."""
        key = int(key)
        return key - 0x10000000000000000 if key > 0x7FFFFFFFFFFFFFFF else key

    @staticmethod
    def state_key(state):
        """The one-word 64-bit fingerprint (this store's key form)."""
        return state.fingerprint()

    def seen_state(self, state, depth):
        """Record by fingerprint; True when prunable at this depth."""
        return self.seen_before(state.fingerprint(), depth)

    def seen_before(self, key, depth):
        """Depth-aware recording of an explicit key: True prunes, False
        means the state must be (re)expanded at this smaller depth."""
        key = self._signed(key)
        best = self._pending.get(key)
        if best is None:
            cache = self._cache
            best = cache.pop(key, None)
            if best is not None:
                cache[key] = best  # LRU touch
            else:
                row = self._conn.execute(
                    "SELECT depth FROM visited WHERE key = ?",
                    (key,)).fetchone()
                if row is not None:
                    best = int(row[0])
        if best is not None and best <= depth:
            return True
        if best is None:
            self._distinct += 1
        self._pending[key] = depth
        self._cache_put(key, depth)
        if len(self._pending) >= self.FLUSH_BATCH:
            self.flush()
        return False

    def _cache_put(self, key, depth):
        cache = self._cache
        cache.pop(key, None)
        cache[key] = depth
        if len(cache) > self.cache_limit:
            cache.pop(next(iter(cache)))

    def flush(self):
        """Drain the write buffer into one batched min-depth upsert."""
        if not self._pending:
            return
        self._conn.executemany(
            "INSERT INTO visited (key, depth) VALUES (?, ?) "
            "ON CONFLICT (key) DO UPDATE SET depth = excluded.depth "
            "WHERE excluded.depth < depth",
            list(self._pending.items()))
        self._conn.commit()
        self._pending.clear()

    def distinct_count(self):
        """Distinct states stored so far - O(1) (in-memory counter)."""
        return self._distinct

    def stats(self):
        """Counters: resident vs on-disk bytes, honest bytes/state."""
        self.flush()
        try:
            disk_bytes = os.path.getsize(self.path)
        except OSError:
            disk_bytes = 0
        resident = (sys.getsizeof(self._cache) + len(self._cache) * 32
                    + sys.getsizeof(self._pending))
        stored = self._distinct
        return {
            "stored": stored,
            "disk_bytes": disk_bytes,
            "resident_bytes": resident,
            "approx_bytes": disk_bytes + resident,
            "bytes_per_state": (round((disk_bytes + resident) / stored, 1)
                                if stored else 0.0),
            "path": self.path,
        }

    def close(self):
        """Flush, close the database, drop an owned temp directory."""
        if self._conn is not None:
            self.flush()
            self._conn.close()
            self._conn = None
        if self._own_dir is not None:
            import shutil
            shutil.rmtree(self._own_dir, ignore_errors=True)
            self._own_dir = None

    def __del__(self):  # noqa: D105 - best-effort temp-dir cleanup
        try:
            self.close()
        except Exception:
            pass

    def __len__(self):
        return self._distinct


class CollapseVisitedSet:
    """Spin-COLLAPSE-style visited store: exact dedup in a few words/state.

    Each *component block* of a state - one device's attribute vector,
    one app's persistent state map, the schedule queue, the pending and
    cascade-command tuples, the mode - is interned to a small integer id
    in a shared arena; a visited entry is the fixed-width byte string of
    those ids (4 bytes per component).  Because interning is exact (full
    block values are the arena keys), the store has the *exact* store's
    verdict contract - no hash collisions, no false positives - while a
    visited entry costs a few machine words like the fingerprint store:
    the bounded search revisits the same blocks constantly, so the arena
    stays tiny while the entry table carries millions of states.

    Keying walks the system's precompiled
    :class:`~repro.model.schema.StateSchema` (fixed slot order, no
    sorting); off-schema components fall back to the schema's sorted
    overflow form, preserving exactness for hand-built states.

    Copy-on-write branching makes sibling states share the *same* inner
    container objects for every component a cascade did not touch, so the
    store keeps a bounded identity-keyed memo (object -> block id) in
    front of the value arena: the common unchanged component costs one
    dict probe instead of a rebuild.  Memo entries pin their container
    (an object id can never be reused while the entry lives, and the memo
    is dropped wholesale when full, releasing every pin together), and
    the usual store contract - states are not mutated after submission -
    keeps the memoized contents stable.
    """

    #: bounded identity-memo entries (each pins one small container);
    #: the memo is cleared outright when full - hot shared containers are
    #: re-memoized within one expansion, so eviction policy is moot
    MEMO_LIMIT = 1 << 16

    def __init__(self, schema):
        self.schema = schema
        #: block value -> small integer id (one arena for all components)
        self._blocks = {}
        #: id(container) -> (container, block id): the COW fast path
        self._ident = {}
        #: packed id vector (bytes) -> minimum depth seen
        self._min_depth = {}
        self._pack = struct.Struct("<%dI" % schema.component_count).pack

    def state_key(self, state):
        """The packed component-id vector of one state (bytes)."""
        schema = self.schema
        memo = self._ident
        ids = []
        append = ids.append
        devices = state._devices
        off_schema = len(devices)
        for entry in schema.device_layout:
            amap = devices.get(entry[0])
            if amap is None:
                append(self._intern(_ABSENT))
                continue
            off_schema -= 1
            memoized = memo.get(id(amap))
            if memoized is not None:
                append(memoized[1])
                continue
            block_id = self._intern(schema.device_block(entry, amap))
            self._memoize(amap, block_id)
            append(block_id)
        append(self._intern(
            schema.unknown_devices(devices) if off_schema else ()))
        append(self._intern(state._mode))
        apps = state._app_states
        off_schema = len(apps)
        for name in schema.app_names:
            mapping = apps.get(name)
            if mapping is None:
                append(self._intern(_ABSENT))
                continue
            off_schema -= 1
            memoized = memo.get(id(mapping))
            if memoized is not None:
                append(memoized[1])
                continue
            block_id = self._intern(schema.app_block(mapping))
            self._memoize(mapping, block_id)
            append(block_id)
        if off_schema:
            append(self._intern(tuple(sorted(
                (name, schema.app_block(mapping))
                for name, mapping in apps.items()
                if name not in schema._app_index))))
        else:
            append(self._intern(()))
        schedules = state._schedules
        memoized = memo.get(id(schedules))
        if memoized is not None:
            append(memoized[1])
        else:
            block_id = self._intern(tuple(sorted(schedules)))
            self._memoize(schedules, block_id)
            append(block_id)
        append(self._intern(state._pending))
        append(self._intern(state._cascade_commands))
        return self._pack(*ids)

    def _intern(self, block):
        blocks = self._blocks
        block_id = blocks.get(block)
        if block_id is None:
            block_id = len(blocks)
            blocks[block] = block_id
        return block_id

    def _memoize(self, container, block_id):
        memo = self._ident
        if len(memo) >= self.MEMO_LIMIT:
            memo.clear()
        memo[id(container)] = (container, block_id)

    def seen_state(self, state, depth):
        """Record by packed component-id vector; True when prunable."""
        return self.seen_before(self.state_key(state), depth)

    def seen_before(self, key, depth):
        """Depth-aware recording of an explicit key: True prunes, False
        means the state must be (re)expanded at this smaller depth."""
        best = self._min_depth.get(key)
        if best is not None and best <= depth:
            return True
        self._min_depth[key] = depth
        return False

    def distinct_count(self):
        """Distinct states stored so far - O(1) (see the protocol doc)."""
        return len(self._min_depth)

    def stats(self):
        """Store counters incl. arena size and honest bytes/state."""
        stored = len(self._min_depth)
        entry_bytes = 0
        if stored:
            # fixed-width keys: measure one, multiply (depth values are
            # small interned ints)
            entry_bytes = sys.getsizeof(next(iter(self._min_depth)))
        arena_bytes = sys.getsizeof(self._blocks) + sum(
            sys.getsizeof(block) for block in self._blocks)
        approx = (sys.getsizeof(self._min_depth) + stored * entry_bytes
                  + arena_bytes)
        return {
            "stored": stored,
            "blocks": len(self._blocks),
            "arena_bytes": arena_bytes,
            "approx_bytes": approx,
            "bytes_per_state": round(approx / stored, 1) if stored else 0.0,
        }

    def __len__(self):
        return len(self._min_depth)
