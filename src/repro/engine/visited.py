"""The VisitedStore protocol and the fingerprint-keyed store.

A visited store answers one question - "was this state already expanded
at an equal-or-smaller depth?" - through two methods:

``state_key(state)``
    Project a :class:`~repro.model.state.ModelState` onto whatever key
    form the store hashes.  The exact store uses the full canonical key;
    the approximate stores use the 64-bit incremental fingerprint, which
    keeps full re-canonicalization out of the hot path.

``seen_before(key, depth)``
    Record the key; return ``True`` when the state may be pruned.

The exact and BITSTATE stores live in :mod:`repro.checker.visited` (their
historical home, kept for compatibility); this module re-exports them and
adds the fingerprint set.
"""

from repro.checker.visited import BitStateTable, ExactVisitedSet

__all__ = ["BitStateTable", "ExactVisitedSet", "FingerprintVisitedSet"]


class FingerprintVisitedSet(ExactVisitedSet):
    """Depth-aware exact-set over 64-bit fingerprints.

    Same depth-aware pruning as :class:`ExactVisitedSet`, but keyed by
    one machine word per state instead of the full canonical key; like
    BITSTATE it admits false positives (two distinct states sharing a
    fingerprint, probability ~2^-64 per pair) but never false negatives.
    """

    @staticmethod
    def state_key(state):
        return state.fingerprint()
