"""The VisitedStore protocol, the fingerprint store and COLLAPSE store.

A visited store answers one question - "was this state already expanded
at an equal-or-smaller depth?" - through three methods:

``seen_state(state, depth)``
    The engine's entry point: record the state; return ``True`` when it
    may be pruned.  Lets each store pick its own keying (the exact store
    buckets by fingerprint first and only canonicalizes duplicates; the
    approximate stores hash the one-word fingerprint directly).  States
    must not be mutated after submission - the exact store may
    canonicalize them lazily.

``state_key(state)`` / ``seen_before(key, depth)``
    The explicit-key protocol, kept for callers that manage keys
    themselves (tests, external tools, the engine's sleep-set state
    matcher).  ``state_key`` projects a
    :class:`~repro.model.state.ModelState` onto the store's key form;
    ``seen_before`` records it.

``distinct_count()``
    O(1) count of distinct states stored so far (a depth-improved
    revisit does not grow it).  The engine samples it around each
    ``seen_state`` call to keep ``states_explored`` a *distinct-state*
    count - an order-independent metric, which is what lets a sharded
    multi-worker run report exactly the single-worker number.

The exact and BITSTATE stores live in :mod:`repro.checker.visited` (their
historical home, kept for compatibility); this module re-exports them and
adds the fingerprint set and the collapse-compressed store.
"""

import struct
import sys

from repro.checker.visited import BitStateTable, ExactVisitedSet
from repro.model.schema import ABSENT as _ABSENT

__all__ = ["BitStateTable", "CollapseVisitedSet", "ExactVisitedSet",
           "FingerprintVisitedSet"]


class FingerprintVisitedSet(ExactVisitedSet):
    """Depth-aware exact-set over 64-bit fingerprints.

    Same depth-aware pruning as :class:`ExactVisitedSet`, but keyed by
    one machine word per state instead of the full canonical key; like
    BITSTATE it admits false positives (two distinct states sharing a
    fingerprint, probability ~2^-64 per pair) but never false negatives.
    """

    @staticmethod
    def state_key(state):
        """The one-word 64-bit fingerprint (this store's key form)."""
        return state.fingerprint()

    def seen_state(self, state, depth):
        """Record by fingerprint; True when prunable at this depth."""
        return self.seen_before(state.fingerprint(), depth)

    def stats(self):
        """``stored``/``approx_bytes``/``bytes_per_state`` counters."""
        stored = len(self._min_depth)
        # dict table + one boxed 64-bit int key per state (depth values
        # are small ints, interned by CPython)
        approx = sys.getsizeof(self._min_depth) + stored * 32
        return {"stored": stored, "approx_bytes": approx,
                "bytes_per_state": round(approx / stored, 1) if stored else 0.0}


class CollapseVisitedSet:
    """Spin-COLLAPSE-style visited store: exact dedup in a few words/state.

    Each *component block* of a state - one device's attribute vector,
    one app's persistent state map, the schedule queue, the pending and
    cascade-command tuples, the mode - is interned to a small integer id
    in a shared arena; a visited entry is the fixed-width byte string of
    those ids (4 bytes per component).  Because interning is exact (full
    block values are the arena keys), the store has the *exact* store's
    verdict contract - no hash collisions, no false positives - while a
    visited entry costs a few machine words like the fingerprint store:
    the bounded search revisits the same blocks constantly, so the arena
    stays tiny while the entry table carries millions of states.

    Keying walks the system's precompiled
    :class:`~repro.model.schema.StateSchema` (fixed slot order, no
    sorting); off-schema components fall back to the schema's sorted
    overflow form, preserving exactness for hand-built states.

    Copy-on-write branching makes sibling states share the *same* inner
    container objects for every component a cascade did not touch, so the
    store keeps a bounded identity-keyed memo (object -> block id) in
    front of the value arena: the common unchanged component costs one
    dict probe instead of a rebuild.  Memo entries pin their container
    (an object id can never be reused while the entry lives, and the memo
    is dropped wholesale when full, releasing every pin together), and
    the usual store contract - states are not mutated after submission -
    keeps the memoized contents stable.
    """

    #: bounded identity-memo entries (each pins one small container);
    #: the memo is cleared outright when full - hot shared containers are
    #: re-memoized within one expansion, so eviction policy is moot
    MEMO_LIMIT = 1 << 16

    def __init__(self, schema):
        self.schema = schema
        #: block value -> small integer id (one arena for all components)
        self._blocks = {}
        #: id(container) -> (container, block id): the COW fast path
        self._ident = {}
        #: packed id vector (bytes) -> minimum depth seen
        self._min_depth = {}
        self._pack = struct.Struct("<%dI" % schema.component_count).pack

    def state_key(self, state):
        """The packed component-id vector of one state (bytes)."""
        schema = self.schema
        memo = self._ident
        ids = []
        append = ids.append
        devices = state._devices
        off_schema = len(devices)
        for entry in schema.device_layout:
            amap = devices.get(entry[0])
            if amap is None:
                append(self._intern(_ABSENT))
                continue
            off_schema -= 1
            memoized = memo.get(id(amap))
            if memoized is not None:
                append(memoized[1])
                continue
            block_id = self._intern(schema.device_block(entry, amap))
            self._memoize(amap, block_id)
            append(block_id)
        append(self._intern(
            schema.unknown_devices(devices) if off_schema else ()))
        append(self._intern(state._mode))
        apps = state._app_states
        off_schema = len(apps)
        for name in schema.app_names:
            mapping = apps.get(name)
            if mapping is None:
                append(self._intern(_ABSENT))
                continue
            off_schema -= 1
            memoized = memo.get(id(mapping))
            if memoized is not None:
                append(memoized[1])
                continue
            block_id = self._intern(schema.app_block(mapping))
            self._memoize(mapping, block_id)
            append(block_id)
        if off_schema:
            append(self._intern(tuple(sorted(
                (name, schema.app_block(mapping))
                for name, mapping in apps.items()
                if name not in schema._app_index))))
        else:
            append(self._intern(()))
        schedules = state._schedules
        memoized = memo.get(id(schedules))
        if memoized is not None:
            append(memoized[1])
        else:
            block_id = self._intern(tuple(sorted(schedules)))
            self._memoize(schedules, block_id)
            append(block_id)
        append(self._intern(state._pending))
        append(self._intern(state._cascade_commands))
        return self._pack(*ids)

    def _intern(self, block):
        blocks = self._blocks
        block_id = blocks.get(block)
        if block_id is None:
            block_id = len(blocks)
            blocks[block] = block_id
        return block_id

    def _memoize(self, container, block_id):
        memo = self._ident
        if len(memo) >= self.MEMO_LIMIT:
            memo.clear()
        memo[id(container)] = (container, block_id)

    def seen_state(self, state, depth):
        """Record by packed component-id vector; True when prunable."""
        return self.seen_before(self.state_key(state), depth)

    def seen_before(self, key, depth):
        """Depth-aware recording of an explicit key: True prunes, False
        means the state must be (re)expanded at this smaller depth."""
        best = self._min_depth.get(key)
        if best is not None and best <= depth:
            return True
        self._min_depth[key] = depth
        return False

    def distinct_count(self):
        """Distinct states stored so far - O(1) (see the protocol doc)."""
        return len(self._min_depth)

    def stats(self):
        """Store counters incl. arena size and honest bytes/state."""
        stored = len(self._min_depth)
        entry_bytes = 0
        if stored:
            # fixed-width keys: measure one, multiply (depth values are
            # small interned ints)
            entry_bytes = sys.getsizeof(next(iter(self._min_depth)))
        arena_bytes = sys.getsizeof(self._blocks) + sum(
            sys.getsizeof(block) for block in self._blocks)
        approx = (sys.getsizeof(self._min_depth) + stored * entry_bytes
                  + arena_bytes)
        return {
            "stored": stored,
            "blocks": len(self._blocks),
            "arena_bytes": arena_bytes,
            "approx_bytes": approx,
            "bytes_per_state": round(approx / stored, 1) if stored else 0.0,
        }

    def __len__(self):
        return len(self._min_depth)
