"""The VisitedStore protocol and the fingerprint-keyed store.

A visited store answers one question - "was this state already expanded
at an equal-or-smaller depth?" - through three methods:

``seen_state(state, depth)``
    The engine's entry point: record the state; return ``True`` when it
    may be pruned.  Lets each store pick its own keying (the exact store
    buckets by fingerprint first and only canonicalizes duplicates; the
    approximate stores hash the one-word fingerprint directly).  States
    must not be mutated after submission - the exact store may
    canonicalize them lazily.

``state_key(state)`` / ``seen_before(key, depth)``
    The explicit-key protocol, kept for callers that manage keys
    themselves (tests, external tools).  ``state_key`` projects a
    :class:`~repro.model.state.ModelState` onto the store's key form;
    ``seen_before`` records it.

The exact and BITSTATE stores live in :mod:`repro.checker.visited` (their
historical home, kept for compatibility); this module re-exports them and
adds the fingerprint set.
"""

from repro.checker.visited import BitStateTable, ExactVisitedSet

__all__ = ["BitStateTable", "ExactVisitedSet", "FingerprintVisitedSet"]


class FingerprintVisitedSet(ExactVisitedSet):
    """Depth-aware exact-set over 64-bit fingerprints.

    Same depth-aware pruning as :class:`ExactVisitedSet`, but keyed by
    one machine word per state instead of the full canonical key; like
    BITSTATE it admits false positives (two distinct states sharing a
    fingerprint, probability ~2^-64 per pair) but never false negatives.
    """

    @staticmethod
    def state_key(state):
        return state.fingerprint()

    def seen_state(self, state, depth):
        return self.seen_before(state.fingerprint(), depth)
