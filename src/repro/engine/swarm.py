"""Swarm verification: N diversified sampled searches, one violation sink.

The beyond-exhaustive tier.  Exhaustive bounded search tops out when the
state space outgrows RAM and patience; Holzmann-style *swarm
verification* answers with many cheap, deliberately different member
searches - each a full run of the existing pluggable engine with a
shuffled successor order (seeded per member), optionally a salted
bitstate visited store and optional state/transition/time budgets - all
funneling violations into one deduplicated sink.

The soundness contract is asymmetric and explicit:

* **Violations are sound.**  Before a swarm result reports a violation,
  the driver replays its event-label path on a fresh *interpreted*
  oracle engine (the tree-interpreter tier, the same oracle the
  differential suites trust) and re-records it from the replayed
  transition; candidates that do not replay are dropped and counted in
  ``swarm["replay_failures"]``.  Reported traces then go through the
  standard canonicalization, so a swarm-found violation renders
  byte-identically to the exhaustive run's trace for the same violation.
* **"Safe" is only "not found".**  Members sample the space (random
  order + budgets + lossy bitstate pruning), so
  :attr:`SwarmResult.coverage` is the constant ``"partial"`` and the
  vetting service never caches a swarm ``safe`` as an exhaustive
  verdict (:mod:`repro.service.scheduler`).

Determinism: the whole swarm is a pure function of the system, the
options and ``options.seed`` - member ``m`` shuffles with
``random.Random("%(seed)d:%(m)d")`` (string seeding is hash-randomization
independent) and derives its bitstate salt from the same pair - so the
same submission always produces the same ``SwarmResult`` JSON (modulo
wall-clock fields), which is what makes swarm-found violations safely
cacheable.

The coverage estimate is Lincoln-Petersen capture-recapture over a
deterministic 1/64 fingerprint sample: members split into two capture
groups (even/odd), the overlap estimates the sampled population, and
``len(union)/estimate`` (capped at 1.0) approximates the fraction of
reachable sampled states the swarm touched.  ``None`` when there is no
overlap or only one member - an estimate that cannot be computed is not
reported as a number.
"""

import copy
import random
import time

from repro.engine.core import ExplorationEngine, path_order_key, replay_path
from repro.engine.options import SEQUENTIAL, SWARM
from repro.engine.result import ExplorationResult

#: admitted states whose fingerprint clears this mask (1/64) feed the
#: capture-recapture coverage estimate
COVERAGE_SAMPLE_MASK = 63


class SwarmResult(ExplorationResult):
    """An :class:`ExplorationResult` merged from N swarm members.

    Adds the ``swarm`` block (member count, seed, per-member stats,
    candidate/replay accounting, coverage estimate) and pins
    :attr:`coverage` to ``"partial"``: sampled search can prove
    violations, never safety.
    """

    def __init__(self):
        super().__init__()
        #: the swarm block: how the merged result came to be
        self.swarm = {
            "members": 0,
            "seed": 0,
            "candidates": 0,
            "replay_failures": 0,
            "distinct_violations": 0,
            "coverage_estimate": None,
            "member_stats": [],
        }

    @property
    def coverage(self):
        """Always ``"partial"``: members sample, they do not exhaust."""
        return "partial"

    def to_dict(self):
        """Serialized form: the base payload plus the ``swarm`` block."""
        data = super().to_dict()
        swarm = dict(self.swarm)
        swarm["member_stats"] = [dict(entry)
                                 for entry in self.swarm["member_stats"]]
        data["swarm"] = swarm
        return data

    @classmethod
    def from_dict(cls, data):
        """Rebuild a swarm result (the base fields via the parent)."""
        result = super().from_dict(data)
        swarm = data.get("swarm") or {}
        result.swarm = {
            "members": swarm.get("members", 0),
            "seed": swarm.get("seed", 0),
            "candidates": swarm.get("candidates", 0),
            "replay_failures": swarm.get("replay_failures", 0),
            "distinct_violations": swarm.get("distinct_violations", 0),
            "coverage_estimate": swarm.get("coverage_estimate"),
            "member_stats": [dict(entry)
                             for entry in swarm.get("member_stats", ())],
        }
        return result

    def summary(self):
        """The base digest plus one swarm accounting line."""
        lines = [super().summary()]
        estimate = self.swarm.get("coverage_estimate")
        lines.append(
            "  swarm: %d member(s), seed %d, %d candidate(s) -> %d "
            "replayed violation(s) (%d failed replay), coverage partial%s"
            % (self.swarm.get("members", 0), self.swarm.get("seed", 0),
               self.swarm.get("candidates", 0), len(self.counterexamples),
               self.swarm.get("replay_failures", 0),
               " (~%.0f%% of sampled states)" % (estimate * 100.0)
               if isinstance(estimate, (int, float)) else ""))
        return "\n".join(lines)

    def __repr__(self):
        return "SwarmResult(members=%d, violations=%d, states=%d)" % (
            self.swarm.get("members", 0), len(self.counterexamples),
            self.states_explored)


class _SamplingVisited:
    """Store proxy feeding the coverage sample from fresh admissions.

    Pure observer: verdict-relevant calls pass straight through to the
    wrapped store; only fingerprints of *admitted* states that clear the
    1/64 sample mask are recorded.
    """

    __slots__ = ("_store", "_sample")

    def __init__(self, store, sample):
        self._store = store
        self._sample = sample

    def seen_state(self, state, depth):
        """The wrapped store's verdict; fresh admissions feed the sample."""
        pruned = self._store.seen_state(state, depth)
        if not pruned:
            fingerprint = state.fingerprint()
            if not fingerprint & COVERAGE_SAMPLE_MASK:
                self._sample.add(fingerprint)
        return pruned

    def state_key(self, state):
        return self._store.state_key(state)

    def seen_before(self, key, depth):
        return self._store.seen_before(key, depth)

    def distinct_count(self):
        return self._store.distinct_count()

    def stats(self):
        return self._store.stats()


class _SwarmMemberEngine(ExplorationEngine):
    """One diversified member search.

    A plain sequential engine run whose successor order is shuffled by
    the member's seeded RNG.  Trace canonicalization is skipped (the
    driver canonicalizes once, on the oracle, after dedup) and telemetry
    stays with the driver - members report through their results.
    """

    canonicalize_traces = False

    def __init__(self, system, properties, options, rng):
        super().__init__(system, properties, options)
        self._rng = rng
        #: fingerprints sampled for the coverage estimate (1/64 mask)
        self.sampled_fingerprints = set()

    def _open_telemetry(self):
        """Members never open sessions; the swarm driver owns the sink."""
        return None

    def _setup_search(self, result):
        """The standard moving parts, with the visited store wrapped by
        the coverage-sampling observer."""
        visited, frontier, cache, reducer, matcher = \
            super()._setup_search(result)
        visited = _SamplingVisited(visited, self.sampled_fingerprints)
        return visited, frontier, cache, reducer, matcher

    def _search_transitions_from(self, node, event_filter=None):
        """The parent's relation with the member's shuffled order."""
        transitions = list(
            super()._search_transitions_from(node, event_filter))
        if len(transitions) > 1:
            self._rng.shuffle(transitions)
        return transitions


def _member_options(options, member):
    """One member's :class:`EngineOptions`, derived from the swarm's.

    Members run the classic sequential in-process search (``mode``,
    ``workers`` and ``telemetry`` are driver concerns), without the
    sleep-set reduction or slab draining - both reorder or prune
    expansions in ways that would fight the deliberate shuffling - and,
    when a bitstate store was requested, with a per-member salt derived
    from ``(seed, member)`` so every member misses a *different* set of
    colliding states.  The state/transition/time budgets apply per
    member.
    """
    member_options = copy.copy(options)
    member_options.mode = SEQUENTIAL
    member_options.workers = 1
    member_options.telemetry = None
    member_options.reduction = False
    member_options.slab_size = 1
    if options.visited in ("bitstate", "bitstate-k"):
        member_options.visited = "bitstate-k"
        member_options.bitstate_salt = (
            options.bitstate_salt
            ^ ((options.seed + 1) * 0x9E3779B9 + member * 0x85EBCA6B))
    return member_options


def _oracle_engine(engine):
    """A fresh interpreted-tier engine for replay and canonicalization."""
    oracle_options = copy.copy(engine.options)
    oracle_options.mode = SEQUENTIAL
    oracle_options.engine = "interpreted"
    oracle_options.workers = 1
    oracle_options.telemetry = None
    oracle_options.reduction = False
    oracle = ExplorationEngine(engine.system, engine.properties,
                               oracle_options)
    oracle.system.use_compiled = False
    oracle.system.executor_factory = None
    return oracle


def _coverage_estimate(samples):
    """Lincoln-Petersen capture-recapture over the member samples.

    ``samples`` is one fingerprint set per member.  Even-indexed members
    form the first capture group, odd-indexed the second; the overlap
    estimates the total sampled population and the union's share of that
    estimate (capped at 1.0) is the reported coverage.  ``None`` when
    the estimate is not computable (one member, an empty group or zero
    overlap).
    """
    if len(samples) < 2:
        return None
    first = set().union(*samples[0::2])
    second = set().union(*samples[1::2])
    overlap = len(first & second)
    if not first or not second or not overlap:
        return None
    estimated = len(first) * len(second) / overlap
    union = len(first | second)
    return round(min(1.0, union / estimated), 4)


def explore_swarm(engine):
    """Run the swarm driver for one engine; returns a :class:`SwarmResult`.

    Launches ``options.swarm_members`` member searches serially (each a
    deterministic function of ``options.seed`` and its index), merges
    their violations through one deduplicated sink, replays every
    candidate on the interpreted oracle (dropping non-replaying ones),
    canonicalizes the surviving traces and attaches member stats plus
    the capture-recapture coverage estimate.
    """
    options = engine.options
    if options.mode != SWARM:
        raise ValueError("explore_swarm needs options.mode == %r, got %r"
                         % (SWARM, options.mode))
    from repro.obs.telemetry import open_session

    started = time.monotonic()
    result = SwarmResult()
    result.swarm["seed"] = int(options.seed)
    telemetry = open_session(options.telemetry)
    try:
        if telemetry is not None:
            telemetry.run_start(options)
        candidates = {}
        samples = []
        stored_total = 0
        bytes_total = 0
        property_totals = {}
        for member in range(options.swarm_members):
            member_started = time.monotonic()
            rng = random.Random("%d:%d" % (options.seed, member))
            member_engine = _SwarmMemberEngine(
                engine.system, engine.properties,
                _member_options(options, member), rng)
            member_result = member_engine.run()
            samples.append(member_engine.sampled_fingerprints)
            result.swarm["members"] += 1
            result.states_explored += member_result.states_explored
            result.transitions += member_result.transitions
            result.cache_hits += member_result.cache_hits
            result.cache_misses += member_result.cache_misses
            result.commutes_pruned += member_result.commutes_pruned
            if member_result.cache_mode != "off":
                result.cache_mode = member_result.cache_mode
            if member_result.truncated:
                result.truncated = True
                result.truncated_reason = "swarm_member_budget"
            stored_total += member_result.visited_stats.get("stored", 0)
            bytes_total += member_result.visited_stats.get("approx_bytes", 0)
            for name, value in member_result.property_stats.items():
                if isinstance(value, (int, float)):
                    property_totals[name] = (property_totals.get(name, 0)
                                             + value)
            for key, counterexample in member_result.counterexamples.items():
                existing = candidates.get(key)
                if existing is None or (path_order_key(counterexample.path)
                                        < path_order_key(existing.path)):
                    candidates[key] = counterexample
            entry = {
                "member": member,
                "states": member_result.states_explored,
                "transitions": member_result.transitions,
                "truncated": member_result.truncated,
                "truncated_reason": member_result.truncated_reason,
                "violations": len(member_result.counterexamples),
            }
            fill = member_result.visited_stats.get("fill_ratio")
            if fill is not None:
                entry["fill_ratio"] = fill
            result.swarm["member_stats"].append(entry)
            if telemetry is not None:
                telemetry.swarm_member(dict(
                    entry, elapsed=round(
                        time.monotonic() - member_started, 6)))
            if options.stop_on_first and candidates:
                break
        explore_elapsed = time.monotonic() - started

        replay_started = time.monotonic()
        result.swarm["candidates"] = len(candidates)
        if candidates:
            oracle = _oracle_engine(engine)
            label_paths = sorted(
                {tuple(ce.event_labels()) for ce in candidates.values()},
                key=lambda labels: (len(labels), labels))
            replayed_any = 0
            for labels in label_paths:
                replayed = replay_path(oracle, labels)
                if replayed is None:
                    result.swarm["replay_failures"] += 1
                    continue
                replayed_any += 1
                node, violations = replayed
                oracle._record(result, node, violations)
            if replayed_any:
                oracle._canonicalize_traces(result)
        result.swarm["distinct_violations"] = len(result.counterexamples)
        result.swarm["coverage_estimate"] = _coverage_estimate(samples)

        result.visited_stats = {
            "stored": stored_total,
            "approx_bytes": bytes_total,
            "bytes_per_state": (round(bytes_total / stored_total, 1)
                                if stored_total else 0.0),
        }
        result.property_stats = property_totals
        result.profile = {
            "explore": explore_elapsed,
            "replay": time.monotonic() - replay_started,
        }
        result.elapsed = time.monotonic() - started
        if telemetry is not None:
            for name in sorted(result.profile):
                telemetry.span(name, result.profile[name])
            telemetry.run_end(result)
        return result
    finally:
        if telemetry is not None:
            telemetry.close()
