"""The pluggable exploration engine.

The exploration machinery of the checker, carved into replaceable parts:

* :mod:`repro.engine.frontier` - expansion order (DFS stack, BFS deque,
  best-first priority heap);
* :mod:`repro.engine.strategy` - the name -> frontier registry behind
  ``EngineOptions(strategy=...)``;
* :mod:`repro.engine.visited` - the VisitedStore protocol: exact
  canonical keys, BITSTATE bitfields, one-word fingerprints, or
  collapse-compressed component interning (exact dedup at a few machine
  words per state);
* :mod:`repro.engine.core` - the bounded search itself;
* :mod:`repro.engine.batch` - :func:`verify_many`, fanning independent
  verification jobs across a process pool;
* :mod:`repro.engine.partition` - the shard-ownership strategies
  (``fingerprint`` / ``locality``) behind ``EngineOptions(partition=...)``;
* :mod:`repro.engine.parallel` - :func:`explore_sharded`, sharding a
  *single* run across worker processes with delta-encoded handoffs and
  bounded work stealing (``EngineOptions(workers=N)`` /
  ``repro check --workers N --partition locality``);
* :mod:`repro.engine.swarm` - :func:`explore_swarm`, the
  beyond-exhaustive tier: N diversified sampled member searches sharing
  one deduplicated, oracle-replayed violation sink
  (``EngineOptions(mode="swarm")`` / ``repro check --mode swarm``).

``repro.checker.explorer`` remains as a thin compatibility shim over this
package.
"""

from repro.engine.batch import VerificationJob, default_workers, verify_many
from repro.engine.core import ExplorationEngine, verify
from repro.engine.parallel import (
    ShardError,
    default_shard_workers,
    explore_sharded,
)
from repro.engine.frontier import (
    BreadthFirstFrontier,
    DepthFirstFrontier,
    Frontier,
    PriorityFrontier,
)
from repro.engine.options import (
    CONCURRENT,
    SEQUENTIAL,
    SWARM,
    EngineOptions,
    visited_store_names,
)
from repro.engine.partition import make_partitioner, partitioner_names
from repro.engine.result import BatchResult, ExplorationResult
from repro.engine.strategy import (
    make_frontier,
    register_strategy,
    strategy_names,
)
from repro.engine.swarm import SwarmResult, explore_swarm
from repro.engine.visited import (
    BitStateTable,
    BitStateVisitedSet,
    CollapseVisitedSet,
    ExactVisitedSet,
    FingerprintVisitedSet,
    SpillVisitedStore,
)

__all__ = [
    "BatchResult",
    "BitStateTable",
    "BitStateVisitedSet",
    "BreadthFirstFrontier",
    "CONCURRENT",
    "CollapseVisitedSet",
    "DepthFirstFrontier",
    "EngineOptions",
    "ExactVisitedSet",
    "ExplorationEngine",
    "ExplorationResult",
    "FingerprintVisitedSet",
    "Frontier",
    "PriorityFrontier",
    "SEQUENTIAL",
    "SWARM",
    "ShardError",
    "SpillVisitedStore",
    "SwarmResult",
    "VerificationJob",
    "default_shard_workers",
    "default_workers",
    "explore_sharded",
    "explore_swarm",
    "make_frontier",
    "make_partitioner",
    "partitioner_names",
    "register_strategy",
    "strategy_names",
    "verify",
    "verify_many",
    "visited_store_names",
]
