"""Tunables for one exploration run."""

from repro.engine import strategy as _strategy

SEQUENTIAL = "sequential"
CONCURRENT = "concurrent"
SWARM = "swarm"

#: the legal ``EngineOptions.mode`` values
EXPLORATION_MODES = (SEQUENTIAL, CONCURRENT, SWARM)

#: execution tiers for the transition relation, slowest to fastest
ENGINE_MODES = ("interpreted", "compiled", "codegen")


# Store constructors import lazily: repro.checker re-exports the engine
# shim, so a module-level import here would be circular.

def _make_exact(options, system):
    from repro.checker.visited import ExactVisitedSet
    return ExactVisitedSet(
        schema=system.state_schema() if system is not None else None)


def _make_fingerprint(options, system):
    from repro.engine.visited import FingerprintVisitedSet
    return FingerprintVisitedSet()


def _make_bitstate(options, system):
    from repro.checker.visited import BitStateTable
    return BitStateTable(bits_log2=options.bitstate_bits)


def _make_collapse(options, system):
    from repro.engine.visited import CollapseVisitedSet
    if system is None:
        raise ValueError("the collapse store packs states against the "
                         "system's schema; pass the system to make_visited")
    return CollapseVisitedSet(system.state_schema())


def _make_bitstate_k(options, system):
    from repro.engine.visited import BitStateVisitedSet
    return BitStateVisitedSet(bits_log2=options.bitstate_bits,
                              salt=options.bitstate_salt)


def _make_spill(options, system):
    from repro.engine.visited import SpillVisitedStore
    path = None
    if options.spill_dir:
        import os
        import tempfile
        os.makedirs(options.spill_dir, exist_ok=True)
        handle, path = tempfile.mkstemp(dir=options.spill_dir,
                                        prefix="visited-", suffix=".sqlite")
        os.close(handle)
        os.unlink(path)  # let SQLite create the file itself
    return SpillVisitedStore(path=path)


#: visited-store name -> constructor taking (options, system-or-None)
_VISITED_STORES = {
    "exact": _make_exact,
    "fingerprint": _make_fingerprint,
    "bitstate": _make_bitstate,
    "bitstate-k": _make_bitstate_k,
    "collapse": _make_collapse,
    "spill": _make_spill,
}


def visited_store_names():
    """The registered visited-store names (CLI choices)."""
    return sorted(_VISITED_STORES)


class EngineOptions:
    """Tunables for one exploration run.

    ``strategy`` selects the frontier by registry name (``dfs``/``bfs``/
    ``priority`` built in; see :func:`repro.engine.register_strategy`).
    ``visited`` selects the store: ``fingerprint`` (the default: one
    64-bit word per state, depth-aware - the hash-compact trade-off Spin
    makes at scale, false-positive pruning probability ~2^-64 per pair),
    ``collapse`` (Spin COLLAPSE-style component interning - *exact*
    dedup at a few machine words per state, the recommended store for
    deep bounds where the exact store's full canonical keys no longer
    fit), ``exact`` (full canonical keys and no hash shortcuts anywhere,
    including the invariant-verdict memo), ``bitstate`` (Spin supertrace
    bitfield), ``bitstate-k`` (the salted k-hash supertrace over the
    same fingerprints - the swarm members' store, O(1) fill-ratio
    saturation reporting) or ``spill`` (the disk-backed SQLite store -
    exhaustive coverage with peak RSS bounded by its caches instead of
    the state count; see ``spill_dir``).

    The compiled-transition-relation knobs:

    ``engine``
        Which execution tier evaluates the transition relation:
        ``interpreted`` walks the handler IR through the tree
        interpreter (the differential oracle, ``--no-compile``),
        ``compiled`` (the default) runs the closure compiler
        (:mod:`repro.model.compiler`), and ``codegen`` generates one
        real Python module per app from the lowered IR
        (:mod:`repro.model.codegen`), ``compile()``/``exec``'s it, and
        additionally evaluates successors through a traceless lean
        cascade with pooled executors and slab-drained frontier
        batches.  A pure performance knob: all three tiers produce
        byte-identical verdicts, violation sets and canonical traces
        (proven corpus-wide by the differential suites), so the choice
        is excluded from the vetting service's semantic digests.
    ``compiled``
        Legacy boolean view of ``engine`` kept for callers predating
        the three-tier split: reading it asks "anything faster than the
        interpreter?"; assigning ``True``/``False`` selects
        ``compiled``/``interpreted``.
    ``codegen_cache``
        Directory for generated per-app modules, keyed by the system's
        semantic digest (``None``: ``$REPRO_CODEGEN_CACHE`` or
        ``~/.cache/repro/codegen``).  Sharded workers regenerate their
        executors from this cache by digest instead of pickling
        closures.
    ``slab_size``
        How many frontier nodes the codegen tier drains per batch
        through the lean transition relation (successor-cache misses
        are evaluated slab-at-a-time, event-class-major).  ``1``
        restores strict node-at-a-time order.
    ``successor_cache``
        Memoize each expanded state's full transition set keyed by its
        64-bit fingerprint, so depth-improved revisits replay successors
        without re-executing any cascade.  ``cache_limit`` bounds the
        number of live memoized expansions (least-recently-hit entries
        are evicted beyond it).  The cache watches its own hit rate:
        after ``cache_warmup`` lookups, a hit rate below
        ``cache_min_hit_rate`` disables and empties it for the rest of
        the run (deep bounds revisit expanded states rarely, so the memo
        would burn memory for nothing); set ``cache_min_hit_rate=0`` to
        keep it unconditionally.
    ``reduction``
        Enable the sleep-set partial-order reduction over the static
        event-independence relation: of the interleavings of commuting
        external events only one representative order is explored, and
        entire commuting suffixes are pruned (not just one order per
        adjacent pair).  Off by default (it changes the explored state
        *count*); ignored in concurrent mode and when failure
        enumeration is on.
    ``scenario``
        Named fault-injection profile layered onto the transition
        relation (see :mod:`repro.model.faults`): ``clean`` (the
        default, ideal delivery), ``lossy``, ``delayed``,
        ``duplicated``, ``device-death`` or ``stale-reads``.  A
        *semantic* knob: each profile changes the explored relation, so
        it participates in the vetting service's digests — a lossy
        verdict is never served from the clean cache.  Any non-clean
        profile disables the sleep-set reduction (sound composition).
    ``check_interval``
        How many transitions may elapse between wall-clock limit checks
        (state/transition limits stay exact; only ``time_limit`` detection
        is quantized).
    ``telemetry``
        Run observability (:mod:`repro.obs`): ``None`` (the default -
        zero telemetry, zero overhead), a JSONL sink path, a keyword
        dict, or a :class:`~repro.obs.telemetry.TelemetryConfig`.
        Progress snapshots piggyback on the ``check_interval`` sampling;
        sharded workers forward theirs over the control channel and the
        parent writes the merged cluster view.  A pure *observer*:
        verdicts, violation sets, traces and the vetting service's
        semantic digests are byte-identical with telemetry on or off,
        so it is excluded from the content digests.
    ``manage_gc``
        Suspend Python's cyclic garbage collector for the duration of a
        run (restored on exit).  The search allocates millions of
        short-lived, almost entirely acyclic objects, so generation-0
        sweeps cost ~30% of wall clock while reclaiming nothing that
        reference counting does not already reclaim.
    ``workers``
        Shard *one* run across this many worker processes
        (:mod:`repro.engine.parallel`): state ownership is partitioned
        by fingerprint, each shard runs the full engine (its own
        frontier, visited store, successor cache and sleep sets) and
        cross-shard frontier states travel as delta-encoded batches
        over multiprocessing queues.  ``1`` (the default) runs the
        classic in-process search.  A pure performance knob: verdicts,
        violation sets and the canonical counterexample traces are
        identical to a single-worker run, so it does not participate in
        the vetting service's content digests.  Consumed by the
        job-based runners (``execute_job``/``explore_sharded`` - shard
        workers rebuild the system from the declarative job); a bare
        :class:`~repro.engine.core.ExplorationEngine` always runs
        in-process.
    ``mode`` / ``seed`` / ``swarm_members``
        ``mode`` selects the exploration semantics: ``sequential`` (the
        default interleaving model), ``concurrent`` (simultaneous event
        batches) or ``swarm`` (:mod:`repro.engine.swarm` - N diversified
        sampled member searches sharing one deduplicated violation
        sink).  Swarm runs are *unsound for safety*: a swarm ``safe``
        verdict always carries ``coverage="partial"`` and is never
        cached as exhaustive, while every reported violation is replayed
        on the interpreted oracle before it is reported.  ``seed`` is
        the root of the per-member diversification (successor shuffling
        and bitstate salts; same seed, same result) and
        ``swarm_members`` is the member count; both are *semantic* for
        swarm runs only - exhaustive digests ignore them.
    ``bitstate_salt`` / ``spill_dir``
        ``bitstate_salt`` remaps every ``bitstate-k`` bit position
        (swarm members derive per-member salts from it), changing which
        states a saturated field misses - semantic, like
        ``bitstate_bits``.  ``spill_dir`` is the directory for ``spill``
        visited-store databases (``None``: a self-cleaning temp dir); a
        local filesystem detail, deliberately not accepted by the
        vetting service API.
    ``partition``
        Which :mod:`repro.engine.partition` strategy maps states to
        owning shards when ``workers > 1``: ``locality`` (the default -
        a stable projection of the packed slot grid that keeps
        successor chains shard-local, order-of-magnitude fewer
        handoffs) or ``fingerprint`` (``fingerprint % N`` - perfectly
        balanced, zero locality).  Like ``workers`` it is a pure
        performance knob excluded from the semantic digests, and it is
        ignored by single-worker runs.
    """

    def __init__(self, max_events=3, mode=SEQUENTIAL, visited="fingerprint",
                 bitstate_bits=23, max_states=200000, max_transitions=None,
                 time_limit=None, stop_on_first=False, strategy="dfs",
                 priority=None, compiled=None, engine=None,
                 codegen_cache=None, slab_size=64, successor_cache=True,
                 cache_limit=100000, cache_min_hit_rate=0.05,
                 cache_warmup=4096, reduction=False, check_interval=256,
                 manage_gc=True, workers=1, partition="locality",
                 scenario="clean", telemetry=None, seed=0, swarm_members=4,
                 bitstate_salt=0, spill_dir=None):
        self.max_events = max_events
        if mode not in EXPLORATION_MODES:
            raise ValueError("unknown mode %r (known: %s)"
                             % (mode, ", ".join(EXPLORATION_MODES)))
        self.mode = mode
        self.visited = visited
        self.bitstate_bits = bitstate_bits
        self.seed = int(seed)
        if int(swarm_members) < 1:
            raise ValueError("swarm_members must be >= 1, got %r"
                             % (swarm_members,))
        self.swarm_members = int(swarm_members)
        self.bitstate_salt = int(bitstate_salt)
        self.spill_dir = spill_dir
        self.max_states = max_states
        self.max_transitions = max_transitions
        self.time_limit = time_limit
        self.stop_on_first = stop_on_first
        self.strategy = strategy
        self.priority = priority
        if engine is None:
            engine = "compiled" if (compiled is None or compiled) \
                else "interpreted"
        if engine not in ENGINE_MODES:
            raise ValueError("unknown engine %r (known: %s)"
                             % (engine, ", ".join(ENGINE_MODES)))
        self.engine = engine
        self.codegen_cache = codegen_cache
        self.slab_size = slab_size
        self.successor_cache = successor_cache
        self.cache_limit = cache_limit
        self.cache_min_hit_rate = cache_min_hit_rate
        self.cache_warmup = cache_warmup
        self.reduction = reduction
        self.check_interval = check_interval
        self.manage_gc = manage_gc
        self.workers = workers
        # imported lazily for the same reason as the store constructors
        from repro.engine.partition import partitioner_names
        if partition not in partitioner_names():
            raise ValueError("unknown partition strategy %r (known: %s)"
                             % (partition, ", ".join(partitioner_names())))
        self.partition = partition
        # normalize to the profile *name*: options travel through JSON
        # payloads and semantic digests, both of which want the string.
        # Imported lazily like the store constructors - repro.model's
        # package init reaches back into repro.engine
        from repro.model.faults import resolve_scenario
        self.scenario = resolve_scenario(scenario).name
        # normalized to a picklable TelemetryConfig (or None): options
        # travel to shard/pool workers and through service payloads, so
        # the telemetry request is declarative data, never a live handle
        from repro.obs.telemetry import resolve_telemetry
        self.telemetry = resolve_telemetry(telemetry)

    @property
    def compiled(self):
        return self.engine != "interpreted"

    @compiled.setter
    def compiled(self, value):
        self.engine = "compiled" if value else "interpreted"

    def make_visited(self, system=None):
        """Build the selected visited store (some stores need the
        system's state schema, hence the argument)."""
        factory = _VISITED_STORES.get(self.visited)
        if factory is None:
            raise KeyError("unknown visited store %r (known: %s)"
                           % (self.visited, ", ".join(sorted(_VISITED_STORES))))
        return factory(self, system)

    def make_frontier(self):
        """Build the frontier selected by ``strategy`` (registry name)."""
        return _strategy.make_frontier(self.strategy, self)
