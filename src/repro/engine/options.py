"""Tunables for one exploration run."""

from repro.engine import strategy as _strategy

SEQUENTIAL = "sequential"
CONCURRENT = "concurrent"


# Store constructors import lazily: repro.checker re-exports the engine
# shim, so a module-level import here would be circular.

def _make_exact(options):
    from repro.checker.visited import ExactVisitedSet
    return ExactVisitedSet()


def _make_fingerprint(options):
    from repro.engine.visited import FingerprintVisitedSet
    return FingerprintVisitedSet()


def _make_bitstate(options):
    from repro.checker.visited import BitStateTable
    return BitStateTable(bits_log2=options.bitstate_bits)


#: visited-store name -> constructor taking the options
_VISITED_STORES = {
    "exact": _make_exact,
    "fingerprint": _make_fingerprint,
    "bitstate": _make_bitstate,
}


class EngineOptions:
    """Tunables for one exploration run.

    ``strategy`` selects the frontier by registry name (``dfs``/``bfs``/
    ``priority`` built in; see :func:`repro.engine.register_strategy`).
    ``visited`` selects the store: ``fingerprint`` (the default: one
    64-bit word per state, depth-aware - the hash-compact trade-off Spin
    makes at scale, false-positive pruning probability ~2^-64 per pair),
    ``exact`` (full canonical keys, exhaustive within the bound) or
    ``bitstate`` (Spin supertrace bitfield).

    The compiled-transition-relation knobs:

    ``compiled``
        Execute app handlers through the closure compiler
        (:mod:`repro.model.compiler`); ``False`` is the ``--no-compile``
        fallback running the tree interpreter (the differential oracle).
    ``successor_cache``
        Memoize each expanded state's full transition set keyed by its
        64-bit fingerprint, so depth-improved revisits replay successors
        without re-executing any cascade.  ``cache_limit`` bounds the
        number of memoized expansions.
    ``reduction``
        Enable the static event-independence reduction: of two commuting
        external events only one order is explored.  Off by default (it
        changes the explored state *count*); ignored in concurrent mode
        and when failure enumeration is on.
    ``check_interval``
        How many transitions may elapse between wall-clock limit checks
        (state/transition limits stay exact; only ``time_limit`` detection
        is quantized).
    ``manage_gc``
        Suspend Python's cyclic garbage collector for the duration of a
        run (restored on exit).  The search allocates millions of
        short-lived, almost entirely acyclic objects, so generation-0
        sweeps cost ~30% of wall clock while reclaiming nothing that
        reference counting does not already reclaim.
    """

    def __init__(self, max_events=3, mode=SEQUENTIAL, visited="fingerprint",
                 bitstate_bits=23, max_states=200000, max_transitions=None,
                 time_limit=None, stop_on_first=False, strategy="dfs",
                 priority=None, compiled=True, successor_cache=True,
                 cache_limit=100000, reduction=False, check_interval=256,
                 manage_gc=True):
        self.max_events = max_events
        self.mode = mode
        self.visited = visited
        self.bitstate_bits = bitstate_bits
        self.max_states = max_states
        self.max_transitions = max_transitions
        self.time_limit = time_limit
        self.stop_on_first = stop_on_first
        self.strategy = strategy
        self.priority = priority
        self.compiled = compiled
        self.successor_cache = successor_cache
        self.cache_limit = cache_limit
        self.reduction = reduction
        self.check_interval = check_interval
        self.manage_gc = manage_gc

    def make_visited(self):
        factory = _VISITED_STORES.get(self.visited)
        if factory is None:
            raise KeyError("unknown visited store %r (known: %s)"
                           % (self.visited, ", ".join(sorted(_VISITED_STORES))))
        return factory(self)

    def make_frontier(self):
        return _strategy.make_frontier(self.strategy, self)
