"""Tunables for one exploration run."""

from repro.engine import strategy as _strategy

SEQUENTIAL = "sequential"
CONCURRENT = "concurrent"


# Store constructors import lazily: repro.checker re-exports the engine
# shim, so a module-level import here would be circular.

def _make_exact(options):
    from repro.checker.visited import ExactVisitedSet
    return ExactVisitedSet()


def _make_fingerprint(options):
    from repro.engine.visited import FingerprintVisitedSet
    return FingerprintVisitedSet()


def _make_bitstate(options):
    from repro.checker.visited import BitStateTable
    return BitStateTable(bits_log2=options.bitstate_bits)


#: visited-store name -> constructor taking the options
_VISITED_STORES = {
    "exact": _make_exact,
    "fingerprint": _make_fingerprint,
    "bitstate": _make_bitstate,
}


class EngineOptions:
    """Tunables for one exploration run.

    ``strategy`` selects the frontier by registry name (``dfs``/``bfs``/
    ``priority`` built in; see :func:`repro.engine.register_strategy`).
    ``visited`` selects the store: ``exact`` (canonical keys), ``bitstate``
    (Spin supertrace over fingerprints) or ``fingerprint`` (one word per
    state, depth-aware).
    """

    def __init__(self, max_events=3, mode=SEQUENTIAL, visited="exact",
                 bitstate_bits=23, max_states=200000, max_transitions=None,
                 time_limit=None, stop_on_first=False, strategy="dfs",
                 priority=None):
        self.max_events = max_events
        self.mode = mode
        self.visited = visited
        self.bitstate_bits = bitstate_bits
        self.max_states = max_states
        self.max_transitions = max_transitions
        self.time_limit = time_limit
        self.stop_on_first = stop_on_first
        self.strategy = strategy
        self.priority = priority

    def make_visited(self):
        factory = _VISITED_STORES.get(self.visited)
        if factory is None:
            raise KeyError("unknown visited store %r (known: %s)"
                           % (self.visited, ", ".join(sorted(_VISITED_STORES))))
        return factory(self)

    def make_frontier(self):
        return _strategy.make_frontier(self.strategy, self)
