"""Lowering: desugar the parsed AST into the checkable IR.

The IR is a restricted Groovy AST.  This pass removes the constructs the
interpreter core does not want to deal with:

* C-style ``for`` loops become ``while`` loops;
* prefix/postfix ``++``/``--`` used as statements become assignments;
* compound assignments (``+=`` etc.) become plain assignments over a binary
  expression (mirroring how the paper's G2J expands them for Bandera);
* ``if``/``while``/closure bodies are guaranteed to be blocks.

The pass is purely structural: it returns a *new* tree and never mutates the
input (apps are parsed once and lowered once, then shared across every
exploration branch).
"""

from repro.groovy import ast

_COMPOUND_OPS = {"+=": "+", "-=": "-", "*=": "*", "/=": "/"}


class LoweringPass:
    """Bottom-up AST rewriter producing the IR tree."""

    def lower_program(self, program):
        statements = [self.lower_stmt(s) for s in program.statements]
        out = ast.Program(statements, source_name=program.source_name)
        out.line, out.col = program.line, program.col
        return out

    # -- statements ---------------------------------------------------------

    def lower_stmt(self, stmt):
        method = getattr(self, "_lower_%s" % type(stmt).__name__, None)
        if method is not None:
            return method(stmt)
        return stmt

    def lower_block(self, block):
        stmts = []
        for stmt in block.stmts:
            lowered = self.lower_stmt(stmt)
            if isinstance(lowered, list):
                stmts.extend(lowered)
            else:
                stmts.append(lowered)
        out = ast.Block(stmts)
        out.line, out.col = block.line, block.col
        return out

    def _lower_MethodDef(self, stmt):
        out = ast.MethodDef(stmt.name, stmt.params, self.lower_block(stmt.body),
                            modifiers=stmt.modifiers, return_type=stmt.return_type)
        out.line, out.col = stmt.line, stmt.col
        return out

    def _lower_Block(self, stmt):
        return self.lower_block(stmt)

    def _lower_If(self, stmt):
        out = ast.If(self.lower_expr(stmt.cond), self.lower_block(stmt.then),
                     self.lower_block(stmt.orelse) if stmt.orelse else None)
        out.line, out.col = stmt.line, stmt.col
        return out

    def _lower_While(self, stmt):
        out = ast.While(self.lower_expr(stmt.cond), self.lower_block(stmt.body))
        out.line, out.col = stmt.line, stmt.col
        return out

    def _lower_ForIn(self, stmt):
        out = ast.ForIn(stmt.var, self.lower_expr(stmt.iterable),
                        self.lower_block(stmt.body))
        out.line, out.col = stmt.line, stmt.col
        return out

    def _lower_ForC(self, stmt):
        """``for (init; cond; update) body`` -> ``{ init; while (cond) { body; update } }``."""
        body_stmts = list(self.lower_block(stmt.body).stmts)
        if stmt.update is not None:
            body_stmts.append(self.lower_stmt(stmt.update))
        cond = self.lower_expr(stmt.cond) if stmt.cond is not None else ast.Literal(True)
        loop = ast.While(cond, ast.Block(body_stmts))
        loop.line, loop.col = stmt.line, stmt.col
        stmts = []
        if stmt.init is not None:
            stmts.append(self.lower_stmt(stmt.init))
        stmts.append(loop)
        out = ast.Block(stmts)
        out.line, out.col = stmt.line, stmt.col
        return out

    def _lower_ExprStmt(self, stmt):
        value = stmt.value
        if isinstance(value, (ast.Postfix, ast.Unary)) and value.op in ("++", "--"):
            target = value.operand
            if isinstance(target, (ast.Name, ast.Property, ast.Index)):
                op = "+" if value.op == "++" else "-"
                assign = ast.Assign(target, "=",
                                    ast.Binary(op, target, ast.Literal(1)))
                assign.line, assign.col = stmt.line, stmt.col
                return assign
        out = ast.ExprStmt(self.lower_expr(value))
        out.line, out.col = stmt.line, stmt.col
        return out

    def _lower_Assign(self, stmt):
        value = self.lower_expr(stmt.value)
        if stmt.op in _COMPOUND_OPS:
            value = ast.Binary(_COMPOUND_OPS[stmt.op], stmt.target, value)
            value.line, value.col = stmt.line, stmt.col
        out = ast.Assign(self.lower_expr(stmt.target), "=", value)
        out.line, out.col = stmt.line, stmt.col
        return out

    def _lower_VarDecl(self, stmt):
        value = self.lower_expr(stmt.value) if stmt.value is not None else None
        out = ast.VarDecl(stmt.name, value, type_name=stmt.type_name)
        out.line, out.col = stmt.line, stmt.col
        return out

    def _lower_Return(self, stmt):
        value = self.lower_expr(stmt.value) if stmt.value is not None else None
        out = ast.Return(value)
        out.line, out.col = stmt.line, stmt.col
        return out

    def _lower_Switch(self, stmt):
        cases = []
        for case in stmt.cases:
            values = [self.lower_expr(v) for v in case.values]
            cases.append(ast.SwitchCase(values, self.lower_block(case.body)))
        out = ast.Switch(self.lower_expr(stmt.subject), cases)
        out.line, out.col = stmt.line, stmt.col
        return out

    def _lower_Try(self, stmt):
        catches = [(t, n, self.lower_block(b)) for t, n, b in stmt.catches]
        finally_body = self.lower_block(stmt.finally_body) if stmt.finally_body else None
        out = ast.Try(self.lower_block(stmt.body), catches=catches,
                      finally_body=finally_body)
        out.line, out.col = stmt.line, stmt.col
        return out

    def _lower_Throw(self, stmt):
        out = ast.Throw(self.lower_expr(stmt.value))
        out.line, out.col = stmt.line, stmt.col
        return out

    # -- expressions ---------------------------------------------------------

    def lower_expr(self, expr):
        if expr is None or not isinstance(expr, ast.Node):
            return expr
        method = getattr(self, "_lower_expr_%s" % type(expr).__name__, None)
        if method is not None:
            return method(expr)
        return self._lower_generic_expr(expr)

    def _lower_generic_expr(self, expr):
        # Rebuild children in place-compatible fashion: expressions are
        # immutable after lowering, so rewriting attribute-by-attribute on a
        # shallow copy is safe.
        import copy
        clone = copy.copy(expr)
        for field in expr._fields:
            value = getattr(expr, field)
            if isinstance(value, ast.Node):
                setattr(clone, field, self.lower_expr(value))
            elif isinstance(value, list):
                setattr(clone, field, [
                    self.lower_expr(v) if isinstance(v, ast.Node) else v
                    for v in value
                ])
        return clone

    def _lower_expr_Closure(self, expr):
        out = ast.Closure(expr.params, self.lower_block(expr.body))
        out.line, out.col = expr.line, expr.col
        return out

    def _lower_expr_Call(self, expr):
        out = ast.Call(expr.name,
                       [self.lower_expr(a) for a in expr.args],
                       named=[ast.MapEntry(e.key, self.lower_expr(e.value))
                              for e in expr.named],
                       closure=self.lower_expr(expr.closure) if expr.closure else None)
        out.line, out.col = expr.line, expr.col
        return out

    def _lower_expr_MethodCall(self, expr):
        out = ast.MethodCall(self.lower_expr(expr.obj), expr.name,
                             [self.lower_expr(a) for a in expr.args],
                             named=[ast.MapEntry(e.key, self.lower_expr(e.value))
                                    for e in expr.named],
                             closure=self.lower_expr(expr.closure) if expr.closure else None,
                             safe=expr.safe, spread=expr.spread)
        out.line, out.col = expr.line, expr.col
        return out


def lower_program(program):
    """Lower a parsed :class:`Program` into the checkable IR."""
    return LoweringPass().lower_program(program)
