"""Translator: Groovy AST -> checkable IR (+ Promela emission).

The paper translates Groovy to Java (for Bandera) and onward to Promela,
solving three problems on the way (§6): SmartThings' DSL syntax (handled in
:mod:`repro.smartapp`), *type inference* for dynamically-typed Groovy
(:mod:`repro.translator.types`), and *built-in utilities* like ``each`` /
``find`` / ``findAll`` / ``collect`` / list ``+`` that the backend does not
know (:mod:`repro.translator.builtins`, applied by
:mod:`repro.translator.lowering`).

Our backend is the Python model checker in :mod:`repro.checker`, so the IR is
a *lowered Groovy AST* (C-style ``for`` desugared, increments desugared,
elvis desugared) executed by :mod:`repro.model.interpreter`.  A Promela
emitter (:mod:`repro.translator.promela`) regenerates Spin-style model text
and the line map used for Fig-7 style violation logs.
"""

from repro.translator.lowering import lower_program
from repro.translator.types import TypeInference, infer_app_types

__all__ = ["lower_program", "TypeInference", "infer_app_types"]
