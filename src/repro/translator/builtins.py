"""Groovy built-in utilities, as a runtime library.

The paper manually analyzed each Groovy collection/string utility and
translated it into Promela-compatible code (§4: "Built-in Utilities ... We
manually analyzed the behavior of each utility and translated them into
corresponding code"; Figure 6 shows list ``+`` becoming array loops).  Our
backend interprets the IR directly, so the same knowledge lives here as a
dispatch table from ``(receiver kind, method name)`` to behaviour.

``call_builtin`` returns ``(True, result)`` when it handled the call and
``(False, None)`` otherwise (the interpreter then tries device commands,
app methods, and platform APIs).
"""

from repro.groovy.errors import GroovyError


class BuiltinError(GroovyError):
    """Raised when a built-in is called with unusable arguments."""


def is_groovy_truthy(value):
    """Groovy truth: null, zero, empty strings/collections are false."""
    if value is None or value is False:
        return False
    if value is True:
        return True
    if isinstance(value, (int, float)):
        return value != 0
    if isinstance(value, (str, list, tuple, dict)):
        return len(value) > 0
    return True


def _invoke(closure_invoker, closure, args):
    if closure is None:
        raise BuiltinError("closure argument required")
    return closure_invoker(closure, list(args))


def _as_number(value, default=None):
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, str):
        try:
            return int(value)
        except ValueError:
            try:
                return float(value)
            except ValueError:
                pass
    if default is not None:
        return default
    raise BuiltinError("cannot coerce %r to a number" % (value,))


# ---------------------------------------------------------------------------
# list / collection utilities
# ---------------------------------------------------------------------------


def _list_each(items, args, closure, invoke):
    for item in items:
        invoke(closure, [item])
    return items


def _list_each_with_index(items, args, closure, invoke):
    for index, item in enumerate(items):
        invoke(closure, [item, index])
    return items


def _list_find(items, args, closure, invoke):
    for item in items:
        if is_groovy_truthy(invoke(closure, [item])):
            return item
    return None


def _list_find_all(items, args, closure, invoke):
    return [item for item in items if is_groovy_truthy(invoke(closure, [item]))]


def _list_collect(items, args, closure, invoke):
    return [invoke(closure, [item]) for item in items]


def _list_any(items, args, closure, invoke):
    if closure is None:
        return any(is_groovy_truthy(item) for item in items)
    return any(is_groovy_truthy(invoke(closure, [item])) for item in items)


def _list_every(items, args, closure, invoke):
    if closure is None:
        return all(is_groovy_truthy(item) for item in items)
    return all(is_groovy_truthy(invoke(closure, [item])) for item in items)


def _list_count(items, args, closure, invoke):
    if closure is not None:
        return sum(1 for item in items if is_groovy_truthy(invoke(closure, [item])))
    if args:
        return sum(1 for item in items if item == args[0])
    return len(items)


def _list_sum(items, args, closure, invoke):
    if closure is not None:
        values = [invoke(closure, [item]) for item in items]
    else:
        values = items
    total = 0
    for value in values:
        total = total + _as_number(value, 0)
    return total


def _list_sort(items, args, closure, invoke):
    if closure is not None:
        return sorted(items, key=lambda item: invoke(closure, [item]))
    return sorted(items, key=_sort_key)


def _sort_key(value):
    # heterogenous-safe ordering: group by type name first
    return (type(value).__name__, value if isinstance(value, (int, float, str)) else str(value))


def _list_join(items, args, closure, invoke):
    sep = args[0] if args else ""
    return str(sep).join(to_groovy_string(item) for item in items)


def _list_unique(items, args, closure, invoke):
    seen = []
    for item in items:
        if item not in seen:
            seen.append(item)
    return seen


def _list_reverse(items, args, closure, invoke):
    return list(reversed(items))


def _list_min(items, args, closure, invoke):
    if not items:
        return None
    if closure is not None:
        return min(items, key=lambda item: invoke(closure, [item]))
    return min(items, key=_sort_key)


def _list_max(items, args, closure, invoke):
    if not items:
        return None
    if closure is not None:
        return max(items, key=lambda item: invoke(closure, [item]))
    return max(items, key=_sort_key)


_LIST_METHODS = {
    "each": _list_each,
    "eachWithIndex": _list_each_with_index,
    "find": _list_find,
    "findAll": _list_find_all,
    "collect": _list_collect,
    "any": _list_any,
    "every": _list_every,
    "count": _list_count,
    "sum": _list_sum,
    "sort": _list_sort,
    "join": _list_join,
    "unique": _list_unique,
    "reverse": _list_reverse,
    "min": _list_min,
    "max": _list_max,
    "size": lambda items, args, closure, invoke: len(items),
    "isEmpty": lambda items, args, closure, invoke: len(items) == 0,
    "contains": lambda items, args, closure, invoke: args[0] in items,
    "first": lambda items, args, closure, invoke: items[0] if items else None,
    "last": lambda items, args, closure, invoke: items[-1] if items else None,
    "indexOf": lambda items, args, closure, invoke: items.index(args[0]) if args[0] in items else -1,
    "plus": lambda items, args, closure, invoke: list(items) + list(args[0]),
    "minus": lambda items, args, closure, invoke: [i for i in items if i not in args[0]],
    "add": lambda items, args, closure, invoke: items.append(args[0]) or True,
    "push": lambda items, args, closure, invoke: items.append(args[0]) or True,
    "remove": lambda items, args, closure, invoke: items.pop(args[0]) if isinstance(args[0], int) else None,
    "get": lambda items, args, closure, invoke: items[args[0]] if 0 <= args[0] < len(items) else None,
    "toString": lambda items, args, closure, invoke: to_groovy_string(items),
    "flatten": lambda items, args, closure, invoke: _flatten(items),
    "intersect": lambda items, args, closure, invoke: [
        i for i in items if i in args[0]],
    "disjoint": lambda items, args, closure, invoke: not any(
        i in args[0] for i in items),
    "collectMany": lambda items, args, closure, invoke: _flatten(
        [invoke(closure, [i]) for i in items]),
    "take": lambda items, args, closure, invoke: list(items[:args[0]]),
    "drop": lambda items, args, closure, invoke: list(items[args[0]:]),
}


def _flatten(items):
    out = []
    for item in items:
        if isinstance(item, (list, tuple)):
            out.extend(_flatten(item))
        else:
            out.append(item)
    return out


# ---------------------------------------------------------------------------
# map utilities
# ---------------------------------------------------------------------------


def _map_each(mapping, args, closure, invoke):
    for key, value in list(mapping.items()):
        # Groovy passes an entry with .key/.value, or two params
        try:
            invoke(closure, [key, value])
        except TypeError:
            invoke(closure, [MapEntryValue(key, value)])
    return mapping


class MapEntryValue:
    """A Groovy ``Map.Entry`` stand-in with ``key``/``value`` properties."""

    __slots__ = ("key", "value")

    def __init__(self, key, value):
        self.key = key
        self.value = value


_MAP_METHODS = {
    "each": _map_each,
    "get": lambda m, args, closure, invoke: m.get(args[0], args[1] if len(args) > 1 else None),
    "put": lambda m, args, closure, invoke: m.__setitem__(args[0], args[1]),
    "containsKey": lambda m, args, closure, invoke: args[0] in m,
    "containsValue": lambda m, args, closure, invoke: args[0] in m.values(),
    "keySet": lambda m, args, closure, invoke: list(m.keys()),
    "values": lambda m, args, closure, invoke: list(m.values()),
    "size": lambda m, args, closure, invoke: len(m),
    "isEmpty": lambda m, args, closure, invoke: len(m) == 0,
    "remove": lambda m, args, closure, invoke: m.pop(args[0], None),
    "clear": lambda m, args, closure, invoke: m.clear(),
    "toString": lambda m, args, closure, invoke: to_groovy_string(m),
}


# ---------------------------------------------------------------------------
# string utilities
# ---------------------------------------------------------------------------


def _string_to_integer(value, args, closure, invoke):
    return int(float(value))


_STRING_METHODS = {
    "toLowerCase": lambda s, args, closure, invoke: s.lower(),
    "toUpperCase": lambda s, args, closure, invoke: s.upper(),
    "trim": lambda s, args, closure, invoke: s.strip(),
    "contains": lambda s, args, closure, invoke: str(args[0]) in s,
    "startsWith": lambda s, args, closure, invoke: s.startswith(str(args[0])),
    "endsWith": lambda s, args, closure, invoke: s.endswith(str(args[0])),
    "equalsIgnoreCase": lambda s, args, closure, invoke: s.lower() == str(args[0]).lower(),
    "equals": lambda s, args, closure, invoke: s == args[0],
    "split": lambda s, args, closure, invoke: s.split(str(args[0])) if args else s.split(),
    "tokenize": lambda s, args, closure, invoke: s.split(str(args[0])) if args else s.split(),
    "replace": lambda s, args, closure, invoke: s.replace(str(args[0]), str(args[1])),
    "replaceAll": lambda s, args, closure, invoke: s.replace(str(args[0]), str(args[1])),
    "substring": lambda s, args, closure, invoke: s[args[0]:args[1]] if len(args) > 1 else s[args[0]:],
    "indexOf": lambda s, args, closure, invoke: s.find(str(args[0])),
    "length": lambda s, args, closure, invoke: len(s),
    "size": lambda s, args, closure, invoke: len(s),
    "isEmpty": lambda s, args, closure, invoke: len(s) == 0,
    "toInteger": _string_to_integer,
    "toLong": _string_to_integer,
    "toFloat": lambda s, args, closure, invoke: float(s),
    "toDouble": lambda s, args, closure, invoke: float(s),
    "toBigDecimal": lambda s, args, closure, invoke: float(s),
    "isNumber": lambda s, args, closure, invoke: _is_number(s),
    "toString": lambda s, args, closure, invoke: s,
    "capitalize": lambda s, args, closure, invoke: s.capitalize(),
    "concat": lambda s, args, closure, invoke: s + to_groovy_string(args[0]),
    "charAt": lambda s, args, closure, invoke: s[args[0]] if 0 <= args[0] < len(s) else None,
}


def _is_number(text):
    try:
        float(text)
        return True
    except (TypeError, ValueError):
        return False


# ---------------------------------------------------------------------------
# number utilities
# ---------------------------------------------------------------------------

_NUMBER_METHODS = {
    "toInteger": lambda n, args, closure, invoke: int(n),
    "toLong": lambda n, args, closure, invoke: int(n),
    "toFloat": lambda n, args, closure, invoke: float(n),
    "toDouble": lambda n, args, closure, invoke: float(n),
    "intValue": lambda n, args, closure, invoke: int(n),
    "round": lambda n, args, closure, invoke: round(n),
    "abs": lambda n, args, closure, invoke: abs(n),
    "toString": lambda n, args, closure, invoke: to_groovy_string(n),
    "max": lambda n, args, closure, invoke: max(n, _as_number(args[0])),
    "min": lambda n, args, closure, invoke: min(n, _as_number(args[0])),
    "times": lambda n, args, closure, invoke: [invoke(closure, [i]) for i in range(int(n))] and None,
}


def to_groovy_string(value):
    """Groovy's ``toString`` rendering for interpolation and ``+``."""
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, float) and value.is_integer():
        return "%.1f" % value
    if isinstance(value, list):
        return "[" + ", ".join(to_groovy_string(v) for v in value) + "]"
    if isinstance(value, dict):
        if not value:
            return "[:]"
        return "[" + ", ".join("%s:%s" % (k, to_groovy_string(v))
                               for k, v in value.items()) + "]"
    return str(value)


def call_builtin(receiver, name, args, closure, closure_invoker):
    """Dispatch a built-in method call.

    Returns ``(handled, result)``.  ``closure_invoker(closure, args)`` is
    supplied by the interpreter to run closure bodies in the right scope.
    """
    table = None
    if isinstance(receiver, list):
        table = _LIST_METHODS
    elif isinstance(receiver, dict):
        table = _MAP_METHODS
    elif isinstance(receiver, str):
        table = _STRING_METHODS
    elif isinstance(receiver, bool):
        table = None
    elif isinstance(receiver, (int, float)):
        table = _NUMBER_METHODS
    if table is not None and name in table:
        return True, table[name](receiver, args, closure, closure_invoker)
    return False, None
