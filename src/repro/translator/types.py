"""Static type inference for the Groovy subset (§6 "Type inference").

Groovy is dynamically typed; the paper infers argument/return/local types by
"recursively tracking the arguments and return values to their corresponding
anchor points - declaration of variables with explicit types, assignment to
constant values, assignment to return values of known APIs, and known
objects and their properties ... the types of other variables are inferred
by propagating the types from anchor points.  This is done iteratively until
we find no more new variables whose type can be inferred."

This module implements that fixpoint.  Types feed the Promela emitter
(variable declarations) and are exercised directly by tests; the interpreter
does not need them (it is dynamically typed like Groovy itself).
"""

from repro.groovy import ast


class GType:
    """A simple structural type: a tag plus an optional element type."""

    __slots__ = ("tag", "elem")

    def __init__(self, tag, elem=None):
        self.tag = tag
        self.elem = elem

    def __eq__(self, other):
        return (isinstance(other, GType) and other.tag == self.tag
                and other.elem == self.elem)

    def __hash__(self):
        return hash((self.tag, self.elem))

    def __repr__(self):
        if self.elem is not None:
            return "%s<%s>" % (self.tag, self.elem)
        return self.tag


UNKNOWN = GType("unknown")
INT = GType("int")
DECIMAL = GType("decimal")
BOOLEAN = GType("boolean")
STRING = GType("String")
DATE = GType("Date")
EVENT = GType("Event")
OBJECT = GType("Object")
MAP = GType("Map")
VOID = GType("void")


def list_of(elem):
    return GType("List", elem)


def device(capability_name):
    """The device-handle type for a capability (STSwitch, STLock, ...)."""
    camel = capability_name[:1].upper() + capability_name[1:]
    return GType("ST" + camel)


_NUMERIC = (INT, DECIMAL)

#: return types of known platform APIs (§6 "assignment to return values of
#: known APIs")
KNOWN_API_TYPES = {
    "now": INT,
    "timeOfDayIsBetween": BOOLEAN,
    "getSunriseAndSunset": MAP,
    "currentValue": STRING,
    "latestValue": STRING,
}

#: types of known event-object properties
_EVENT_PROPERTY_TYPES = {
    "value": STRING,
    "stringValue": STRING,
    "name": STRING,
    "displayName": STRING,
    "descriptionText": STRING,
    "deviceId": STRING,
    "doubleValue": DECIMAL,
    "floatValue": DECIMAL,
    "numericValue": DECIMAL,
    "numberValue": DECIMAL,
    "integerValue": INT,
    "longValue": INT,
    "date": DATE,
    "isStateChange": BOOLEAN,
}

_DECL_TYPE_NAMES = {
    "int": INT, "Integer": INT, "long": INT, "Long": INT, "short": INT,
    "float": DECIMAL, "double": DECIMAL, "Float": DECIMAL, "Double": DECIMAL,
    "BigDecimal": DECIMAL, "Number": DECIMAL,
    "boolean": BOOLEAN, "Boolean": BOOLEAN,
    "String": STRING, "GString": STRING,
    "Date": DATE,
    "Map": MAP, "HashMap": MAP,
    "List": list_of(UNKNOWN), "ArrayList": list_of(UNKNOWN),
    "Collection": list_of(UNKNOWN), "Set": list_of(UNKNOWN),
    "def": UNKNOWN, "Object": OBJECT, "void": VOID,
}


def join(a, b):
    """The least upper bound of two types in the (flat-ish) lattice."""
    if a == UNKNOWN:
        return b
    if b == UNKNOWN or a == b:
        return a
    if a in _NUMERIC and b in _NUMERIC:
        return DECIMAL
    if a.tag == "List" and b.tag == "List":
        return list_of(join(a.elem or UNKNOWN, b.elem or UNKNOWN))
    return OBJECT


def declared_type(name):
    """Map a source-level type name to a :class:`GType`."""
    return _DECL_TYPE_NAMES.get(name, OBJECT if name else UNKNOWN)


class MethodTypes:
    """Inference result for one method: params, locals, return type."""

    def __init__(self, name):
        self.name = name
        self.params = {}
        self.locals = {}
        self.return_type = UNKNOWN

    def lookup(self, name):
        if name in self.locals:
            return self.locals[name]
        if name in self.params:
            return self.params[name]
        return None


class TypeInference:
    """Fixpoint type inference over a smart app."""

    def __init__(self, app):
        self.app = app
        self.globals = {}
        self.methods = {}
        self._changed = False
        self._seed_globals()

    # -- anchors -------------------------------------------------------------

    def _seed_globals(self):
        """Inputs are the app's globals; their types come from preferences."""
        for app_input in self.app.inputs:
            self.globals[app_input.name] = self._input_type(app_input)
        self.globals["state"] = MAP
        self.globals["settings"] = MAP
        self.globals["location"] = GType("STLocation")
        self.globals["app"] = GType("STApp")
        self.globals["log"] = GType("STLog")

    def _input_type(self, app_input):
        if app_input.is_device:
            base = device(app_input.capability)
            return list_of(base) if app_input.multiple else base
        mapping = {
            "number": INT, "decimal": DECIMAL, "bool": BOOLEAN,
            "boolean": BOOLEAN, "text": STRING, "string": STRING,
            "enum": STRING, "time": STRING, "phone": STRING,
            "contact": STRING, "mode": STRING, "hub": OBJECT,
            "password": STRING, "email": STRING, "icon": STRING,
        }
        return mapping.get(app_input.type, STRING)

    # -- the fixpoint ---------------------------------------------------------

    def run(self, max_iterations=10):
        """Iterate until no variable gains a more precise type."""
        for method in self.app.program.methods:
            self.methods[method.name] = MethodTypes(method.name)
        for _ in range(max_iterations):
            self._changed = False
            for method in self.app.program.methods:
                self._infer_method(method)
            if not self._changed:
                break
        return self

    def _record(self, table, name, gtype):
        if gtype == UNKNOWN:
            return
        old = table.get(name, UNKNOWN)
        new = join(old, gtype)
        if new != old:
            table[name] = new
            self._changed = True

    def _infer_method(self, method):
        info = self.methods[method.name]
        for param in method.params:
            if param.type_name:
                self._record(info.params, param.name, declared_type(param.type_name))
            elif param.name not in info.params:
                # Single-parameter handlers receive the event object.
                if len(method.params) == 1 and method.name in self._handler_names():
                    info.params[param.name] = EVENT
                else:
                    info.params.setdefault(param.name, UNKNOWN)
        if method.return_type:
            self._record_return(info, declared_type(method.return_type))
        last_value_type = self._infer_block(method.body, info)
        if last_value_type is not None:
            self._record_return(info, last_value_type)

    def _record_return(self, info, gtype):
        if gtype == UNKNOWN:
            return
        new = join(info.return_type, gtype)
        if new != info.return_type:
            info.return_type = new
            self._changed = True

    def _handler_names(self):
        return set(self.app.handler_names)

    def _infer_block(self, block, info):
        last = None
        for stmt in block.stmts:
            last = self._infer_stmt(stmt, info)
        return last

    def _infer_stmt(self, stmt, info):
        if isinstance(stmt, ast.VarDecl):
            if stmt.type_name:
                self._record(info.locals, stmt.name, declared_type(stmt.type_name))
            if stmt.value is not None:
                self._record(info.locals, stmt.name, self.infer_expr(stmt.value, info))
            return None
        if isinstance(stmt, ast.Assign):
            value_type = self.infer_expr(stmt.value, info)
            if isinstance(stmt.target, ast.Name):
                name = stmt.target.id
                if name in info.locals or name in info.params:
                    self._record(info.locals, name, value_type)
                elif name in self.globals:
                    pass  # globals are anchored by preferences
                else:
                    self._record(info.locals, name, value_type)
            return None
        if isinstance(stmt, ast.ExprStmt):
            return self.infer_expr(stmt.value, info)
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._record_return(info, self.infer_expr(stmt.value, info))
            return None
        if isinstance(stmt, ast.If):
            self.infer_expr(stmt.cond, info)
            self._infer_block(stmt.then, info)
            if stmt.orelse:
                self._infer_block(stmt.orelse, info)
            return None
        if isinstance(stmt, (ast.While,)):
            self.infer_expr(stmt.cond, info)
            self._infer_block(stmt.body, info)
            return None
        if isinstance(stmt, ast.ForIn):
            iter_type = self.infer_expr(stmt.iterable, info)
            if iter_type.tag == "List" and iter_type.elem:
                self._record(info.locals, stmt.var, iter_type.elem)
            self._infer_block(stmt.body, info)
            return None
        if isinstance(stmt, ast.Switch):
            self.infer_expr(stmt.subject, info)
            for case in stmt.cases:
                self._infer_block(case.body, info)
            return None
        if isinstance(stmt, ast.Block):
            return self._infer_block(stmt, info)
        if isinstance(stmt, ast.Try):
            self._infer_block(stmt.body, info)
            for _t, _n, block in stmt.catches:
                self._infer_block(block, info)
            if stmt.finally_body:
                self._infer_block(stmt.finally_body, info)
            return None
        return None

    # -- expressions -----------------------------------------------------------

    def infer_expr(self, expr, info):
        """Infer the type of an expression in a method context."""
        if expr is None:
            return UNKNOWN
        if isinstance(expr, ast.Literal):
            return self._literal_type(expr.value)
        if isinstance(expr, ast.GString):
            return STRING
        if isinstance(expr, ast.ListLit):
            elem = UNKNOWN
            for item in expr.items:
                elem = join(elem, self.infer_expr(item, info))
            return list_of(elem)
        if isinstance(expr, ast.MapLit):
            return MAP
        if isinstance(expr, ast.RangeLit):
            return list_of(INT)
        if isinstance(expr, ast.Name):
            local = info.lookup(expr.id)
            if local is not None:
                return local
            return self.globals.get(expr.id, UNKNOWN)
        if isinstance(expr, ast.Property):
            return self._property_type(expr, info)
        if isinstance(expr, ast.Index):
            obj_type = self.infer_expr(expr.obj, info)
            if obj_type.tag == "List":
                return obj_type.elem or UNKNOWN
            return UNKNOWN
        if isinstance(expr, ast.Binary):
            return self._binary_type(expr, info)
        if isinstance(expr, ast.Unary):
            if expr.op == "!":
                return BOOLEAN
            return self.infer_expr(expr.operand, info)
        if isinstance(expr, ast.Postfix):
            return self.infer_expr(expr.operand, info)
        if isinstance(expr, ast.Ternary):
            return join(self.infer_expr(expr.then, info),
                        self.infer_expr(expr.orelse, info))
        if isinstance(expr, ast.Elvis):
            return join(self.infer_expr(expr.value, info),
                        self.infer_expr(expr.fallback, info))
        if isinstance(expr, ast.Cast):
            return declared_type(expr.type_name)
        if isinstance(expr, ast.New):
            return declared_type(expr.type_name)
        if isinstance(expr, ast.Call):
            return self._call_type(expr, info)
        if isinstance(expr, ast.MethodCall):
            return self._method_call_type(expr, info)
        if isinstance(expr, ast.Closure):
            return GType("Closure")
        return UNKNOWN

    def _literal_type(self, value):
        if isinstance(value, bool):
            return BOOLEAN
        if isinstance(value, int):
            return INT
        if isinstance(value, float):
            return DECIMAL
        if isinstance(value, str):
            return STRING
        return UNKNOWN

    def _property_type(self, expr, info):
        obj_type = self.infer_expr(expr.obj, info)
        if obj_type == EVENT:
            return _EVENT_PROPERTY_TYPES.get(expr.name, UNKNOWN)
        if obj_type.tag.startswith("ST") and expr.name.startswith("current"):
            return STRING
        if obj_type.tag == "List":
            if expr.name == "size":
                return INT
            return list_of(UNKNOWN)
        if obj_type == GType("STLocation") and expr.name == "mode":
            return STRING
        return UNKNOWN

    def _binary_type(self, expr, info):
        op = expr.op
        if op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||", "in",
                  "instanceof", "==~"):
            return BOOLEAN
        left = self.infer_expr(expr.left, info)
        right = self.infer_expr(expr.right, info)
        if op == "+":
            if STRING in (left, right):
                return STRING
            if left.tag == "List":
                return left
            return join(left, right) if left in _NUMERIC or right in _NUMERIC else join(left, right)
        if op in ("-", "*", "%"):
            return join(left, right) if join(left, right) in _NUMERIC else DECIMAL
        if op == "/":
            return DECIMAL
        if op == "<<" and left.tag == "List":
            return left
        return UNKNOWN

    def _call_type(self, expr, info):
        if expr.name in KNOWN_API_TYPES:
            return KNOWN_API_TYPES[expr.name]
        callee = self.methods.get(expr.name)
        if callee is not None:
            return callee.return_type
        return UNKNOWN

    def _method_call_type(self, expr, info):
        obj_type = self.infer_expr(expr.obj, info)
        if obj_type.tag == "List" or obj_type == STRING or obj_type == MAP:
            return self._builtin_return_type(expr.name, obj_type)
        if expr.name in KNOWN_API_TYPES:
            return KNOWN_API_TYPES[expr.name]
        if expr.name in ("toInteger", "toLong", "intValue"):
            return INT
        if expr.name in ("toFloat", "toDouble", "toBigDecimal"):
            return DECIMAL
        if expr.name == "toString":
            return STRING
        callee = self.methods.get(expr.name)
        if callee is not None:
            return callee.return_type
        return UNKNOWN

    def _builtin_return_type(self, name, obj_type):
        elem = obj_type.elem or UNKNOWN if obj_type.tag == "List" else UNKNOWN
        table = {
            "size": INT, "count": INT, "indexOf": INT, "length": INT,
            "isEmpty": BOOLEAN, "contains": BOOLEAN, "any": BOOLEAN,
            "every": BOOLEAN, "equalsIgnoreCase": BOOLEAN,
            "startsWith": BOOLEAN, "endsWith": BOOLEAN, "isNumber": BOOLEAN,
            "join": STRING, "toString": STRING, "trim": STRING,
            "toLowerCase": STRING, "toUpperCase": STRING,
            "find": elem, "first": elem, "last": elem, "min": elem, "max": elem,
            "findAll": obj_type if obj_type.tag == "List" else UNKNOWN,
            "collect": list_of(UNKNOWN),
            "sort": obj_type if obj_type.tag == "List" else UNKNOWN,
            "plus": obj_type if obj_type.tag == "List" else UNKNOWN,
            "sum": DECIMAL,
        }
        return table.get(name, UNKNOWN)


def infer_app_types(app):
    """Run type inference on a :class:`SmartApp`; returns the filled engine."""
    return TypeInference(app).run()
