"""Output Analyzer (§9): violation attribution.

Attributes safety violations to either a *malicious app*, a *bad app*, or a
*misconfiguration*, using the two-phase violation-ratio heuristic:

1. when a new app is installed, enumerate all of its possible
   configurations and verify each independently; a violation ratio above
   the threshold (default 90%) flags the app as potentially **malicious**;
2. otherwise verify it, again under all configurations, in conjunction
   with the previously installed apps; a ratio above the threshold flags a
   **bad app**, anything else is attributed to **misconfiguration** and
   safe configurations are suggested.

:mod:`repro.attribution.volunteers` carries the seven non-expert
configuration profiles used for the §10.1 user study (Table 6).
"""

from repro.attribution.analyzer import (
    VERDICT_BAD_APP,
    VERDICT_MALICIOUS,
    VERDICT_MISCONFIGURED,
    VERDICT_SAFE,
    AttributionReport,
    OutputAnalyzer,
)
from repro.attribution.enumerator import ConfigurationEnumerator
from repro.attribution.volunteers import (
    VOLUNTEER_PROFILES,
    volunteer_configuration,
    volunteer_profile_names,
)

__all__ = [
    "VERDICT_BAD_APP",
    "VERDICT_MALICIOUS",
    "VERDICT_MISCONFIGURED",
    "VERDICT_SAFE",
    "AttributionReport",
    "OutputAnalyzer",
    "ConfigurationEnumerator",
    "VOLUNTEER_PROFILES",
    "volunteer_configuration",
    "volunteer_profile_names",
]
