"""The seven non-expert configuration profiles (§10.1 user study).

The paper asked seven student volunteers to configure ten groups of ~5
related apps "with the assumption that they would deploy them at home"
(70 configurations total) and found 97 violations of 10 properties
(Table 6).  We cannot re-run the human study, so each volunteer is
modeled as a deterministic *profile*: a characteristic way of filling in
app preferences that encodes one of the §2.2 misconfiguration causes
("the app's description is unclear", "too many configuration options",
"users do not have good domain knowledge").

Profile 1 is the documented Virtual Thermostat error verbatim: "5 out of
7 student volunteers ... mis-configured the app to control both the AC
outlet and the heater outlet."
"""

from repro.config.schema import SystemConfiguration
from repro.corpus.groups import CONTACTS, VOLUNTEER_GROUPS
from repro.devices.catalog import device_spec


# ---------------------------------------------------------------------------
# the shared household every volunteer configures against
# ---------------------------------------------------------------------------


def full_house():
    """The device inventory shown to every volunteer (one home, §10.1)."""
    config = SystemConfiguration(contacts=CONTACTS)
    for name, type_name, label in _FULL_HOUSE_DEVICES:
        config.add_device(name, type_name, label)
    config.association.update({
        "main_door_lock": "frontDoorLock",
        "garage_door": "garageDoor",
        "alarm": "homeAlarm",
        "siren": "homeAlarm",
        "temp_sensor": "myTempMeas",
        "heater_outlet": "myHeaterOutlet",
        "ac_outlet": "myACOutlet",
        "fan_outlet": "bathFanOutlet",
        "water_valve": "mainValve",
        "leak_shutoff_valve": "mainValve",
        "sprinkler_outlet": "gardenSprinkler",
        "camera": "hallCamera",
        "speaker": "patioSpeaker",
        "thermostat": "homeThermostat",
    })
    return config


_FULL_HOUSE_DEVICES = [
    ("alicePresence", "smartsense-presence", "Alice's Presence"),
    ("bobPresence", "smartsense-presence", "Bob's Presence"),
    ("frontDoorLock", "zwave-lock", "Front Door Lock"),
    ("frontContact", "smartsense-multi", "Front Door Contact"),
    ("livRoomMotion", "smartsense-motion", "Living Room Motion"),
    ("batRoomMotion", "smartsense-motion", "Bathroom Motion"),
    ("livRoomBulbOutlet", "smart-outlet", "Living Room Bulb Outlet"),
    ("bedRoomBulbOutlet", "smart-outlet", "Bedroom Bulb Outlet"),
    ("batRoomBulbOutlet", "smart-outlet", "Bathroom Bulb Outlet"),
    ("myTempMeas", "temperature-sensor", "Indoor Temperature"),
    ("myHeaterOutlet", "smart-outlet", "Heater Outlet"),
    ("myACOutlet", "smart-outlet", "AC Outlet"),
    ("homeThermostat", "thermostat", "Thermostat"),
    ("homeEnergyMeter", "energy-meter", "Energy Meter"),
    ("bathHumidity", "humidity-sensor", "Bathroom Humidity"),
    ("bathFanOutlet", "smart-outlet", "Bathroom Fan Outlet"),
    ("homeAlarm", "siren-strobe", "Siren/Strobe Alarm"),
    ("kitchenSmoke", "smoke-detector", "Kitchen Smoke Detector"),
    ("garageCO", "co-detector", "Garage CO Detector"),
    ("hallCamera", "ip-camera", "Hallway Camera"),
    ("basementLeak", "moisture-sensor", "Basement Leak Sensor"),
    ("mainValve", "smart-valve", "Main Water Valve"),
    ("gardenSprinkler", "smart-outlet", "Garden Sprinkler Outlet"),
    ("gardenMoisture", "humidity-sensor", "Garden Moisture"),
    ("patioSpeaker", "speaker", "Patio Speaker"),
    ("garageDoor", "garage-door-opener", "Garage Door"),
    ("bedShade", "window-shade", "Bedroom Window Shade"),
    ("washerMeter", "energy-meter", "Washer Power Meter"),
    ("doorAccel", "acceleration-sensor", "Door Knock Sensor"),
    ("hallIlluminance", "illuminance-sensor", "Hall Illuminance"),
    ("hallButton", "button-controller", "Hall Button"),
    ("entryDoor", "door-control", "Entry Door Control"),
]


# ---------------------------------------------------------------------------
# profile machinery
# ---------------------------------------------------------------------------


class VolunteerProfile:
    """One simulated volunteer: a deterministic input-binding strategy."""

    def __init__(self, name, description, chooser):
        self.name = name
        self.description = description
        #: chooser(declaration, matching_devices, deployment) -> value
        self._chooser = chooser

    def bind(self, smart_app, deployment):
        """Produce this volunteer's bindings for one app."""
        index = _capability_index(deployment)
        bindings = {}
        for declaration in smart_app.inputs:
            if declaration.is_device:
                matching = index.get(declaration.capability, [])
            else:
                matching = []
            value = self._chooser(declaration, matching, deployment)
            if value is not None:
                bindings[declaration.name] = value
        return bindings

    def __repr__(self):
        return "VolunteerProfile(%r)" % (self.name,)


def _capability_index(deployment):
    index = {}
    for device in deployment.devices:
        spec = device_spec(device.type)
        for capability in spec.capabilities:
            index.setdefault(capability, []).append(device.name)
    return index


def _value_default(declaration, deployment):
    """Reasonable value-input choice shared by most profiles."""
    input_type = declaration.type
    if input_type == "enum":
        options = list(declaration.options or [])
        return options[0] if options else None
    if input_type == "mode":
        return deployment.modes[0] if deployment.modes else None
    if input_type in ("number", "decimal"):
        if declaration.default is not None:
            return declaration.default
        return 75 if "temp" in declaration.name.lower() else 10
    if input_type in ("phone", "contact"):
        return deployment.contacts[0] if deployment.contacts else None
    if input_type == "bool":
        return True
    return declaration.default


# -- the seven volunteers ------------------------------------------------------


def _maximalist(declaration, matching, deployment):
    """Volunteer 1: selects *everything* the picker offers.

    This is the documented Virtual Thermostat failure: the app expects
    either a heater outlet or an AC outlet, the picker shows all outlets,
    and the volunteer selects them all.
    """
    if matching:
        if declaration.multiple:
            return list(matching)
        return matching[0]
    return _value_default(declaration, deployment)


def _first_match(declaration, matching, deployment):
    """Volunteer 2: always takes the first device in the list and skips
    anything marked optional (too many configuration options)."""
    if not declaration.required:
        return None
    if matching:
        return [matching[0]] if declaration.multiple else matching[0]
    return _value_default(declaration, deployment)


def _last_match(declaration, matching, deployment):
    """Volunteer 3: scrolls to the bottom of every picker; for enums this
    flips heat/cool-style choices to the unintended option."""
    if matching:
        return [matching[-1]] if declaration.multiple else matching[-1]
    if declaration.type == "enum":
        options = list(declaration.options or [])
        return options[-1] if options else None
    return _value_default(declaration, deployment)


def _outlet_confuser(declaration, matching, deployment):
    """Volunteer 4: confuses special-purpose outlets with lamp outlets -
    heater/AC inputs get a bulb outlet and vice versa (no domain
    knowledge of what is plugged in where, §2.2 cause iii)."""
    if matching:
        swapped = list(matching)
        if "myHeaterOutlet" in swapped and "myACOutlet" in swapped:
            # deliberately picks the *other* special outlet first
            swapped.sort(key=lambda n: (n != "myACOutlet", n))
        if declaration.multiple:
            return [swapped[0]]
        return swapped[0]
    return _value_default(declaration, deployment)


def _threshold_extremist(declaration, matching, deployment):
    """Volunteer 5: device choices are sane, numeric thresholds are not
    (mixes up Fahrenheit bands, sets timers to zero)."""
    if matching:
        return [matching[0]] if declaration.multiple else matching[0]
    if declaration.type in ("number", "decimal"):
        text = declaration.name.lower() + (declaration.title or "").lower()
        if "temp" in text or "setpoint" in text:
            return 55  # heats the home to a freezing setpoint
        return 0
    return _value_default(declaration, deployment)


def _duplicator(declaration, matching, deployment):
    """Volunteer 6: binds the same living-room devices to every app,
    creating cross-app conflicts on shared actuators."""
    favorites = ["livRoomBulbOutlet", "livRoomMotion", "frontContact",
                 "frontDoorLock"]
    if matching:
        favored = [name for name in favorites if name in matching]
        chosen = favored[0] if favored else matching[0]
        return [chosen] if declaration.multiple else chosen
    return _value_default(declaration, deployment)


def _mode_mixer(declaration, matching, deployment):
    """Volunteer 7: misunderstands location modes - picks Home where Away
    is intended and vice versa."""
    if matching:
        return [matching[0]] if declaration.multiple else matching[0]
    if declaration.type == "mode":
        modes = list(deployment.modes)
        text = declaration.name.lower()
        if "away" in text and "Home" in modes:
            return "Home"
        if ("home" in text or "night" in text) and "Away" in modes:
            return "Away"
        return modes[0] if modes else None
    return _value_default(declaration, deployment)


VOLUNTEER_PROFILES = {
    "volunteer1-maximalist": VolunteerProfile(
        "volunteer1-maximalist",
        "selects every offered device (the Virtual Thermostat error)",
        _maximalist),
    "volunteer2-first-match": VolunteerProfile(
        "volunteer2-first-match",
        "takes the first device, skips optional inputs", _first_match),
    "volunteer3-last-match": VolunteerProfile(
        "volunteer3-last-match",
        "takes the last device and the last enum option", _last_match),
    "volunteer4-outlet-confuser": VolunteerProfile(
        "volunteer4-outlet-confuser",
        "confuses which outlet feeds which appliance", _outlet_confuser),
    "volunteer5-threshold-extremist": VolunteerProfile(
        "volunteer5-threshold-extremist",
        "sane devices, nonsensical numeric thresholds", _threshold_extremist),
    "volunteer6-duplicator": VolunteerProfile(
        "volunteer6-duplicator",
        "binds the same favorite devices to every app", _duplicator),
    "volunteer7-mode-mixer": VolunteerProfile(
        "volunteer7-mode-mixer",
        "swaps Home and Away modes", _mode_mixer),
}


def volunteer_profile_names():
    return sorted(VOLUNTEER_PROFILES)


def volunteer_configuration(group_name, profile_name, registry):
    """One volunteer's configuration of one user-study group.

    ``registry`` maps app names to SmartApps (the corpus).  Returns a
    :class:`SystemConfiguration` over the full-house inventory with every
    app of the group bound the way this volunteer would bind it.
    """
    apps = VOLUNTEER_GROUPS.get(group_name)
    if apps is None:
        raise KeyError("unknown volunteer group %r" % (group_name,))
    profile = VOLUNTEER_PROFILES.get(profile_name)
    if profile is None:
        raise KeyError("unknown volunteer profile %r" % (profile_name,))
    config = full_house()
    for app_name in apps:
        smart_app = registry.get(app_name)
        if smart_app is None:
            continue
        config.add_app(app_name, profile.bind(smart_app, config))
    return config


def all_volunteer_configurations(registry):
    """All 70 (group, profile) configurations of the §10.1 study."""
    configurations = {}
    for group_name in sorted(VOLUNTEER_GROUPS):
        for profile_name in volunteer_profile_names():
            configurations[(group_name, profile_name)] = (
                volunteer_configuration(group_name, profile_name, registry))
    return configurations


def volunteer_verification_jobs(registry, options=None, groups=None,
                                profiles=None, registry_spec=None):
    """The §10.1 study as :class:`~repro.engine.VerificationJob` list.

    Each of the (up to 70) volunteer configurations is one independent
    verification; hand the list to :func:`repro.engine.verify_many` to
    fan the user study across worker processes (Table 6).

    ``registry`` produces the volunteer bindings; the *same* apps must be
    visible inside the workers, so pass ``registry_spec`` (a
    :mod:`repro.engine.batch` spec string) when ``registry`` is not the
    plain bundled corpus - otherwise the jobs carry the mapping itself.
    """
    from repro.engine import EngineOptions, VerificationJob

    options = options or EngineOptions(max_events=2, max_states=60000)
    job_registry = registry_spec if registry_spec is not None else registry
    jobs = []
    for group_name in sorted(groups or VOLUNTEER_GROUPS):
        for profile_name in (profiles or volunteer_profile_names()):
            config = volunteer_configuration(group_name, profile_name,
                                             registry)
            jobs.append(VerificationJob(
                "%s/%s" % (group_name, profile_name), config, options,
                registry=job_registry, strict=False))
    return jobs
