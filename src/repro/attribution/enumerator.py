"""Configuration enumeration for the Output Analyzer.

"In the first phase, when a user installs a new smart app, the output
analyzer enumerates all possible configurations for this app" (§9).  A
configuration assigns every input of the app a value drawn from the
deployed system:

* device inputs range over the installed devices exposing the declared
  capability (multi-device inputs additionally get the all-devices
  binding, since users routinely select everything, §2.2);
* ``enum``/``mode`` inputs range over their declared options / the
  location modes;
* numeric inputs range over a small representative candidate set (the
  domain is unbounded; candidates span the modeled attribute domains);
* optional inputs additionally range over *unbound*.

The full product can explode, so enumeration is lazy and bounded.
"""

from math import gcd as _gcd

from repro.devices.catalog import device_spec

#: default cap on enumerated configurations per app
DEFAULT_LIMIT = 256

#: representative numeric candidates when an input gives no default
_GENERIC_NUMERIC = (10, 50)

#: representative candidates for temperature-like inputs (°F band the
#: modeled temperature domain spans)
_TEMPERATURE_NUMERIC = (65, 75, 85)

_TEMPERATURE_HINTS = ("temp", "setpoint", "heat", "cool", "emergency")
_TIME_HINTS = ("minute", "delay", "duration", "second")

#: appliance hints in input names/titles -> device-association roles
_INTENT_ROLES = (
    ("heater", "heater_outlet"),
    ("air conditioner", "ac_outlet"),
    ("a/c", "ac_outlet"),
    ("ac ", "ac_outlet"),
    ("fan", "fan_outlet"),
    ("sprinkler", "sprinkler_outlet"),
    ("coffee", "coffee_outlet"),
    ("dehumidifier", "fan_outlet"),
    ("temperature sensor", "temp_sensor"),
    ("thermometer", "temp_sensor"),
)


class ConfigurationEnumerator:
    """Enumerates the possible configurations of one app in one deployment.

    ``deployment`` is a :class:`~repro.config.schema.SystemConfiguration`
    supplying the installed devices, modes and contacts.
    """

    def __init__(self, deployment, limit=DEFAULT_LIMIT):
        self.deployment = deployment
        self.limit = limit
        self._devices_by_capability = self._index_devices()

    def _index_devices(self):
        index = {}
        for device in self.deployment.devices:
            spec = device_spec(device.type)
            for capability in spec.capabilities:
                index.setdefault(capability, []).append(device.name)
        return index

    # ------------------------------------------------------------------
    # candidates per input
    # ------------------------------------------------------------------

    def candidates(self, declaration):
        """The candidate values for one :class:`AppInput`, in stable order."""
        values = list(self._required_candidates(declaration))
        if not declaration.required:
            values.append(None)
        if not values:
            values = [None]
        return values

    def _required_candidates(self, declaration):
        if declaration.is_device:
            return self._device_candidates(declaration)
        input_type = declaration.type
        if input_type == "enum":
            return list(declaration.options or [])
        if input_type == "mode":
            return list(self.deployment.modes)
        if input_type == "bool":
            return [True, False]
        if input_type in ("number", "decimal"):
            return self._numeric_candidates(declaration)
        if input_type in ("phone", "contact"):
            return list(self.deployment.contacts) or [None]
        if input_type in ("text", "time"):
            if declaration.default is not None:
                return [declaration.default]
            return [None]
        if declaration.default is not None:
            return [declaration.default]
        return []

    def _device_candidates(self, declaration):
        matching = self._devices_by_capability.get(declaration.capability, [])
        matching = self._narrow_by_intent(declaration, matching)
        if not matching:
            return []
        if not declaration.multiple:
            return list(matching)
        # every singleton plus the everything binding - pairs and larger
        # subsets add little attribution signal at exponential cost
        candidates = [[name] for name in matching]
        if len(matching) > 1:
            candidates.append(list(matching))
        return candidates

    def _narrow_by_intent(self, declaration, matching):
        """Bind intent-named inputs to their device-association roles.

        A user configuring "the heater outlet" picks the outlet the heater
        is plugged into - that is exactly the device-association info the
        Configuration Extractor records (§7).  When the input's name/title
        carries an appliance hint and the deployment has the matching
        role(s), enumeration ranges over those devices; inputs without a
        hint (plain lights, switches) keep the full candidate list.
        """
        text = " ".join([declaration.name, declaration.title or "",
                         getattr(declaration, "section", None) or ""]).lower()
        hinted = []
        for hint, role in _INTENT_ROLES:
            if hint not in text:
                continue
            value = self.deployment.association.get(role)
            names = value if isinstance(value, list) else [value]
            for name in names:
                if (isinstance(name, str) and name in matching
                        and name not in hinted):
                    hinted.append(name)
        return hinted or matching

    def _numeric_candidates(self, declaration):
        if declaration.default is not None:
            return [declaration.default]
        name = declaration.name.lower()
        title = (declaration.title or "").lower()
        text = name + " " + title
        if any(hint in text for hint in _TEMPERATURE_HINTS):
            return list(_TEMPERATURE_NUMERIC)
        if any(hint in text for hint in _TIME_HINTS):
            return [5]
        return list(_GENERIC_NUMERIC)

    # ------------------------------------------------------------------
    # enumeration
    # ------------------------------------------------------------------

    def enumerate_bindings(self, smart_app, limit=None):
        """Yield binding dicts for enumerated configurations.

        Bindings omit unbound optional inputs.  When the full product fits
        under ``limit`` every configuration is produced; otherwise ``limit``
        configurations are sampled *deterministically spread* across the
        space (a prefix of the raw product would only ever vary the last
        input, which starves the violation-ratio estimate of §9).
        """
        cap = self.limit if limit is None else limit
        inputs = list(smart_app.inputs)
        names = [decl.name for decl in inputs]
        candidate_lists = [self.candidates(decl) for decl in inputs]
        total = 1
        for candidates in candidate_lists:
            total *= len(candidates)
        if total <= cap:
            combo_indices = range(total)
        else:
            stride = max(1, total // cap)
            while _gcd(stride, total) != 1:
                stride += 1
            combo_indices = ((i * stride) % total for i in range(cap))
        for index in combo_indices:
            bindings = {}
            remainder = index
            for input_name, candidates in zip(names, candidate_lists):
                remainder, position = divmod(remainder, len(candidates))
                value = candidates[position]
                if value is None:
                    continue
                bindings[input_name] = value
            yield bindings

    def count(self, smart_app, limit=None):
        """Number of configurations that would be enumerated (capped)."""
        cap = self.limit if limit is None else limit
        total = 1
        for declaration in smart_app.inputs:
            total *= len(self.candidates(declaration))
            if total >= cap:
                return cap
        return total
