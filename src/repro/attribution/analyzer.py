"""The two-phase attribution algorithm of §9.

Phase 1: the newly installed app is verified *alone* under every
enumerated configuration.  A violation ratio above the threshold means the
app misbehaves regardless of how it is wired - the signature of a
malicious app ("malicious apps are likely to consistently try to coerce
the IoT system into exploitable bad states", §1).

Phase 2: otherwise the app is verified *in conjunction with* the
previously installed apps, again under every configuration of the new
app.  A ratio above the threshold now flags a bad app; below it, the
violations are attributed to misconfiguration and the safe configurations
found along the way are offered as suggestions.
"""

from repro.attribution.enumerator import ConfigurationEnumerator
from repro.config.schema import SystemConfiguration
from repro.engine import EngineOptions, ExplorationEngine
from repro.model.generator import ModelGenerator
from repro.properties.catalog import build_properties
from repro.properties.selection import select_relevant

VERDICT_MALICIOUS = "malicious"
VERDICT_BAD_APP = "bad-app"
VERDICT_MISCONFIGURED = "misconfiguration"
VERDICT_SAFE = "safe"

#: "If the proportion of violations (violation ratio) is greater than a
#: predefined threshold (e.g., 90%) ..." (§9)
DEFAULT_THRESHOLD = 0.9


class PhaseResult:
    """Outcome of one attribution phase across all configurations."""

    def __init__(self, phase):
        self.phase = phase
        #: list of (bindings, [violation, ...]) per verified configuration
        self.runs = []

    def record(self, bindings, violations):
        self.runs.append((bindings, list(violations)))

    @property
    def configurations(self):
        return len(self.runs)

    @property
    def violating(self):
        return sum(1 for _bindings, violations in self.runs if violations)

    @property
    def ratio(self):
        if not self.runs:
            return 0.0
        return self.violating / float(self.configurations)

    def safe_bindings(self):
        """Configurations that verified clean (misconfig suggestions)."""
        return [bindings for bindings, violations in self.runs
                if not violations]

    def violated_property_ids(self):
        ids = set()
        for _bindings, violations in self.runs:
            ids.update(v.property.id for v in violations)
        return sorted(ids)

    def __repr__(self):
        return "PhaseResult(phase=%d, ratio=%.2f, configs=%d)" % (
            self.phase, self.ratio, self.configurations)


class AttributionReport:
    """The verdict for one newly installed app."""

    def __init__(self, app_name, verdict, phase1, phase2=None,
                 threshold=DEFAULT_THRESHOLD):
        self.app_name = app_name
        self.verdict = verdict
        self.phase1 = phase1
        self.phase2 = phase2
        self.threshold = threshold

    @property
    def is_flagged(self):
        return self.verdict in (VERDICT_MALICIOUS, VERDICT_BAD_APP)

    def suggestions(self):
        """Safe configurations to offer for a misconfiguration verdict."""
        if self.verdict != VERDICT_MISCONFIGURED or self.phase2 is None:
            return []
        return self.phase2.safe_bindings()

    def summary(self):
        lines = ["%s: %s (threshold %.0f%%)" % (
            self.app_name, self.verdict.upper(), self.threshold * 100)]
        lines.append("  phase 1 (alone): %d/%d configurations violate "
                     "(ratio %.0f%%)" % (self.phase1.violating,
                                         self.phase1.configurations,
                                         self.phase1.ratio * 100))
        if self.phase2 is not None:
            lines.append("  phase 2 (with installed apps): %d/%d "
                         "configurations violate (ratio %.0f%%)"
                         % (self.phase2.violating,
                            self.phase2.configurations,
                            self.phase2.ratio * 100))
        properties = (self.phase2 or self.phase1).violated_property_ids()
        if properties:
            lines.append("  violated properties: %s" % ", ".join(properties))
        suggestions = self.suggestions()
        if suggestions:
            lines.append("  %d safe configuration(s) available"
                         % len(suggestions))
        return "\n".join(lines)

    def __repr__(self):
        return "AttributionReport(%r, %s)" % (self.app_name, self.verdict)


class OutputAnalyzer:
    """Runs the §9 attribution for newly installed apps.

    ``registry`` maps app names to parsed SmartApps (the corpus);
    ``properties`` defaults to the full 45-property catalog.
    """

    def __init__(self, registry, properties=None, threshold=DEFAULT_THRESHOLD,
                 max_configs=64, explorer_options=None):
        self.registry = dict(registry)
        self.properties = (list(properties) if properties is not None
                           else build_properties())
        self.threshold = threshold
        self.max_configs = max_configs
        self.explorer_options = explorer_options or EngineOptions(
            max_events=2, max_states=20000)
        self._generator = ModelGenerator(self.registry)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def attribute(self, app_name, deployment, installed=(),
                  origin="unknown"):
        """Attribute ``app_name`` newly installed into ``deployment``.

        ``installed`` lists (app name, bindings) pairs for the apps already
        present.  ``origin`` labels the app's provenance: a phase-1 flag on
        an ``"unknown"`` app reads *malicious*; on a vetted ``"market"``
        app the same signal reads *bad app* (§10.3 attributes the 100%%-
        ratio market apps as bad, not malicious).  Returns an
        :class:`AttributionReport`.
        """
        smart_app = self.registry.get(app_name)
        if smart_app is None:
            raise KeyError("unknown app %r" % (app_name,))
        enumerator = ConfigurationEnumerator(deployment,
                                             limit=self.max_configs)

        phase1 = self._run_phase(1, smart_app, deployment, enumerator,
                                 installed=())
        if phase1.ratio > self.threshold:
            verdict = (VERDICT_BAD_APP if origin == "market"
                       else VERDICT_MALICIOUS)
            return AttributionReport(app_name, verdict, phase1,
                                     threshold=self.threshold)

        phase2 = self._run_phase(2, smart_app, deployment, enumerator,
                                 installed=installed)
        if phase2.ratio > self.threshold:
            verdict = VERDICT_BAD_APP
        elif phase2.violating:
            verdict = VERDICT_MISCONFIGURED
        else:
            verdict = VERDICT_SAFE
        return AttributionReport(app_name, verdict, phase1, phase2,
                                 threshold=self.threshold)

    def attribute_many(self, app_names, deployment, installed=(),
                       origin="unknown"):
        """Attribute several candidate apps against the same deployment."""
        return {name: self.attribute(name, deployment, installed=installed,
                                     origin=origin)
                for name in app_names}

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _run_phase(self, phase, smart_app, deployment, enumerator, installed):
        result = PhaseResult(phase)
        instance_name = "%s (new)" % smart_app.name
        for bindings in enumerator.enumerate_bindings(smart_app):
            violations = self._verify(smart_app, bindings, deployment,
                                      installed)
            if phase == 2:
                # phase 2 asks whether the *new* app misbehaves alongside
                # the installed ones; violations the installed apps cause
                # entirely on their own do not count against it
                violations = [v for v in violations
                              if not v.apps or instance_name in v.apps]
            result.record(bindings, violations)
        return result

    def _verify(self, smart_app, bindings, deployment, installed):
        config = SystemConfiguration(
            devices=list(deployment.devices),
            contacts=list(deployment.contacts),
            modes=list(deployment.modes),
            initial_mode=deployment.initial_mode,
            association=dict(deployment.association),
            http_allowed=list(deployment.http_allowed),
        )
        for name, app_bindings in installed:
            config.add_app(name, dict(app_bindings))
        config.add_app(smart_app.name, dict(bindings),
                       instance_name="%s (new)" % smart_app.name)
        try:
            # user mode changes are environment choices here so that
            # mode-triggered apps can be vetted in isolation (§10.3)
            system = self._generator.build(config, strict=False,
                                           user_mode_events=True)
        except Exception:  # unbuildable binding combination counts clean
            return []
        properties = select_relevant(system, self.properties)
        engine = ExplorationEngine(system, properties, self.explorer_options)
        return engine.run().violations
